// Abstract Job Objects.
//
// "The workflows being instantiated are known in UNICORE as Abstract Job
// Objects (AJOs) and are sent via ssl as serialised Java objects. ... the
// AJOs are translated into Perl scripts for a target machine. This process
// is known as incarnation; it allows the details of the scripts used to run
// the workflow to be hidden from the application." (paper section 2.2)
//
// An Ajo is an abstract, target-independent task list; the NJS incarnates
// it into concrete TargetCommands (unicore/tsi.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace cs::unicore {

/// One abstract task inside an AJO.
struct AjoTask {
  enum class Kind {
    kImportFile,   ///< stage `name` (with `content`) into the job directory
    kExecute,      ///< run application `name` with `args`
    kExportFile,   ///< stage `name` out into the job outcome
    kStartSteering ///< start a VISIT proxy-server for this job; `name` holds
                   ///< the connection password
  };
  Kind kind = Kind::kExecute;
  std::string name;
  std::string content;
  std::map<std::string, std::string> args;

  friend bool operator==(const AjoTask&, const AjoTask&) = default;
};

/// The abstract job: an ordered task list targeted at one virtual site.
struct Ajo {
  std::string job_name;
  std::string vsite;  ///< target virtual site, e.g. "juelich"
  std::vector<AjoTask> tasks;

  /// Serialized text form (stands in for the serialized-Java wire format).
  std::string serialize() const;
  static common::Result<Ajo> parse(std::string_view text);

  friend bool operator==(const Ajo&, const Ajo&) = default;
};

/// Convenience builder mirroring the UNICORE client's job preparation GUI.
class AjoBuilder {
 public:
  AjoBuilder(std::string job_name, std::string vsite) {
    ajo_.job_name = std::move(job_name);
    ajo_.vsite = std::move(vsite);
  }

  AjoBuilder& import_file(std::string name, std::string content) {
    ajo_.tasks.push_back({AjoTask::Kind::kImportFile, std::move(name),
                          std::move(content), {}});
    return *this;
  }

  AjoBuilder& execute(std::string application,
                      std::map<std::string, std::string> args = {}) {
    ajo_.tasks.push_back({AjoTask::Kind::kExecute, std::move(application),
                          {}, std::move(args)});
    return *this;
  }

  AjoBuilder& export_file(std::string name) {
    ajo_.tasks.push_back(
        {AjoTask::Kind::kExportFile, std::move(name), {}, {}});
    return *this;
  }

  /// Enables computational steering for this job (the VISIT extension).
  AjoBuilder& start_steering(std::string password) {
    ajo_.tasks.push_back(
        {AjoTask::Kind::kStartSteering, std::move(password), {}, {}});
    return *this;
  }

  Ajo build() const { return ajo_; }

 private:
  Ajo ajo_;
};

/// Lifecycle of a consigned job.
enum class JobState {
  kConsigned,   ///< accepted by the NJS, not yet incarnated
  kQueued,      ///< waiting in the target system's batch queue
  kRunning,
  kSuccessful,
  kFailed,
};

std::string_view to_string(JobState state) noexcept;

/// What the client fetches when the job is done.
struct JobOutcome {
  JobState state = JobState::kConsigned;
  std::string stdout_text;
  std::string error_text;
  std::map<std::string, std::string> exported_files;
};

}  // namespace cs::unicore
