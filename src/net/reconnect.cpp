#include "net/reconnect.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace cs::net {

using common::Deadline;
using common::Duration;
using common::Result;
using common::Status;
using common::StatusCode;

Reconnector::Reconnector(Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.initial_backoff < Duration::zero()) {
    options_.initial_backoff = Duration::zero();
  }
  if (options_.max_backoff < options_.initial_backoff) {
    options_.max_backoff = options_.initial_backoff;
  }
  options_.jitter = std::clamp(options_.jitter, 0.0, 0.999);
}

bool Reconnector::retriable(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kNotFound:
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

Duration Reconnector::next_sleep(Duration backoff, Deadline deadline) {
  double fraction = 1.0;
  if (options_.jitter > 0.0) {
    std::scoped_lock lock(mutex_);
    fraction = 1.0 - options_.jitter * rng_.next_double();
  }
  auto sleep = std::chrono::duration_cast<Duration>(backoff * fraction);
  if (!deadline.is_infinite()) sleep = std::min(sleep, deadline.remaining());
  return sleep;
}

Result<ConnectionPtr> Reconnector::dial(Network& net,
                                        const std::string& address,
                                        Deadline deadline) {
  Status last{StatusCode::kTimeout, "connect deadline"};
  Duration backoff = options_.initial_backoff;
  for (;;) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    auto conn = net.connect(address, deadline);
    if (conn.is_ok()) {
      successes_.fetch_add(1, std::memory_order_relaxed);
      return conn;
    }
    last = conn.status();
    if (!retriable(last.code())) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return last;
    }
    if (deadline.has_expired()) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(next_sleep(backoff, deadline));
    if (deadline.has_expired()) break;
    if (options_.multiplier > 1.0) {
      backoff = std::min(
          options_.max_backoff,
          std::chrono::duration_cast<Duration>(backoff * options_.multiplier));
    }
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

Reconnector::Stats Reconnector::stats() const {
  Stats out;
  out.attempts = attempts_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.successes = successes_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  return out;
}

Result<ConnectionPtr> connect_retry(Network& net, const std::string& address,
                                    Deadline deadline,
                                    const Reconnector::Options& options) {
  Reconnector reconnector(options);
  return reconnector.dial(net, address, deadline);
}

}  // namespace cs::net
