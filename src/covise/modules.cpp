#include "covise/modules.hpp"

#include <algorithm>
#include <charconv>

namespace cs::covise {

using common::Status;
using common::StatusCode;

double ModuleContext::param_double(const std::string& key,
                                   double fallback) const {
  auto it = params_->find(key);
  if (it == params_->end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

int ModuleContext::param_int(const std::string& key, int fallback) const {
  auto it = params_->find(key);
  if (it == params_->end()) return fallback;
  int v = fallback;
  const auto& s = it->second;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

Status FieldSourceModule::compute(ModuleContext& ctx) {
  if (!generator_) {
    return Status{StatusCode::kUnavailable, "no generator bound"};
  }
  ctx.set_output("field", generator_(ctx.param_double("time", 0.0)));
  return Status::ok();
}

Status IsoSurfaceModule::compute(ModuleContext& ctx) {
  auto input = ctx.input("field");
  if (!input.is_ok()) return input.status();
  const auto* grid = input.value()->as<UniformGridData>();
  if (grid == nullptr) {
    return Status{StatusCode::kInvalidArgument, "input is not a grid"};
  }
  GeometryData geometry;
  geometry.mesh = viz::extract_isosurface(
      grid->field(), static_cast<float>(ctx.param_double("isovalue", 0.0)));
  geometry.color = viz::Color{
      static_cast<std::uint8_t>(ctx.param_int("r", 80)),
      static_cast<std::uint8_t>(ctx.param_int("g", 170)),
      static_cast<std::uint8_t>(ctx.param_int("b", 255))};
  ctx.set_output("geometry", std::move(geometry));
  return Status::ok();
}

Status CuttingPlaneModule::compute(ModuleContext& ctx) {
  auto input = ctx.input("field");
  if (!input.is_ok()) return input.status();
  const auto* grid = input.value()->as<UniformGridData>();
  if (grid == nullptr) {
    return Status{StatusCode::kInvalidArgument, "input is not a grid"};
  }
  const int axis = std::clamp(ctx.param_int("axis", 2), 0, 2);
  const double position = std::clamp(ctx.param_double("position", 0.5), 0.0, 1.0);
  const auto field = grid->field();

  // Dimensions of the slice plane (u, v) and the fixed slice index.
  const int dims[3] = {grid->nx, grid->ny, grid->nz};
  const int u_axis = (axis + 1) % 3;
  const int v_axis = (axis + 2) % 3;
  const int nu = dims[u_axis];
  const int nv = dims[v_axis];
  const int slice = std::min<int>(
      dims[axis] - 1, static_cast<int>(position * (dims[axis] - 1)));
  if (nu < 2 || nv < 2 || dims[axis] < 1) {
    return Status{StatusCode::kInvalidArgument, "field too small to slice"};
  }

  GeometryData geometry;
  geometry.color = viz::Color{
      static_cast<std::uint8_t>(ctx.param_int("r", 255)),
      static_cast<std::uint8_t>(ctx.param_int("g", 180)),
      static_cast<std::uint8_t>(ctx.param_int("b", 60))};
  auto& mesh = geometry.mesh;
  mesh.vertices.reserve(static_cast<std::size_t>(nu) * nv);
  const auto vertex_at = [&](int u, int v) {
    int idx[3];
    idx[axis] = slice;
    idx[u_axis] = u;
    idx[v_axis] = v;
    common::Vec3 p = field.world(idx[0], idx[1], idx[2]);
    // Displace along the slice normal by the field value: the slice carries
    // the data, and its triangle count scales with resolution.
    const double h = field.at(idx[0], idx[1], idx[2]) * 0.2 * field.spacing;
    if (axis == 0) p.x += h;
    else if (axis == 1) p.y += h;
    else p.z += h;
    return p;
  };
  for (int v = 0; v < nv; ++v) {
    for (int u = 0; u < nu; ++u) {
      mesh.vertices.push_back(vertex_at(u, v));
    }
  }
  const auto vid = [&](int u, int v) {
    return static_cast<std::uint32_t>(v * nu + u);
  };
  for (int v = 0; v + 1 < nv; ++v) {
    for (int u = 0; u + 1 < nu; ++u) {
      mesh.triangles.push_back({vid(u, v), vid(u + 1, v), vid(u + 1, v + 1)});
      mesh.triangles.push_back({vid(u, v), vid(u + 1, v + 1), vid(u, v + 1)});
    }
  }
  ctx.set_output("geometry", std::move(geometry));
  return Status::ok();
}

Status RendererModule::compute(ModuleContext& ctx) {
  const int width = std::clamp(ctx.param_int("width", 320), 8, 4096);
  const int height = std::clamp(ctx.param_int("height", 240), 8, 4096);
  viz::Camera camera;
  const std::string cam_text = ctx.param("camera");
  if (!cam_text.empty()) {
    auto parsed = viz::Camera::parse(cam_text);
    if (!parsed.is_ok()) return parsed.status();
    camera = parsed.value();
  }
  viz::Renderer renderer(width, height);
  renderer.clear();
  for (const auto& port : input_ports()) {
    auto input = ctx.input(port);
    if (!input.is_ok()) continue;  // unconnected geometry slots are fine
    const auto* geometry = input.value()->as<GeometryData>();
    if (geometry == nullptr) {
      return Status{StatusCode::kInvalidArgument,
                    port + " is not geometry"};
    }
    renderer.draw_mesh(geometry->mesh, camera, geometry->color);
  }
  ctx.set_output("image", ImageData{renderer.frame()});
  return Status::ok();
}

}  // namespace cs::covise
