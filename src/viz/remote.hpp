// Remote rendering — the OpenGL VizServer model (paper sections 2.2/2.4).
//
// The scene lives on the "visual supercomputer" (RemoteRenderServer). A
// laptop-class participant sends viewpoint events upstream and receives
// delta-compressed bitmaps downstream; it never holds the geometry — "the
// datasets which are being rendered as isosurfaces are too large to be
// visualized on a laptop client". The session is collaborative exactly as
// VizServer's was: all participants share one camera, a view change by any
// of them re-renders for everyone.
//
// The comparison pipeline for experiments E1/E7 is GeometryChannel: ship
// the triangles once and render locally (the COVISE/scene-graph approach).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/transport.hpp"
#include "viz/camera.hpp"
#include "viz/compress.hpp"
#include "viz/render.hpp"

namespace cs::viz {

/// Thread-safe scene container shared between a simulation feeding data in
/// and a render loop drawing it.
class SceneStore {
 public:
  void set_mesh(TriangleMesh mesh, Color color);
  void set_particles(std::vector<ParticleSprite> particles, GlyphStyle style);
  void set_boxes(std::vector<std::pair<common::Vec3, common::Vec3>> boxes,
                 Color color);

  /// Renders the current scene contents.
  void render(Renderer& renderer, const Camera& camera) const;

  /// Monotonic counter bumped by every mutation.
  std::uint64_t version() const noexcept { return version_.load(); }

  /// Raw geometry size (what a local pipeline must ship on each change).
  std::size_t geometry_bytes() const;

  /// Serializes the scene for a GeometryChannel; decode restores it.
  common::Bytes encode() const;
  common::Status decode(common::ByteSpan data);

 private:
  mutable std::mutex mutex_;
  TriangleMesh mesh_;
  Color mesh_color_{80, 170, 255};
  std::vector<ParticleSprite> particles_;
  GlyphStyle glyph_style_ = GlyphStyle::kPoint;
  std::vector<std::pair<common::Vec3, common::Vec3>> boxes_;
  Color box_color_{90, 90, 90};
  std::atomic<std::uint64_t> version_{0};
};

// ---------------------------------------------------------------------------
// VizServer-style pipeline
// ---------------------------------------------------------------------------

class RemoteRenderServer {
 public:
  struct Options {
    std::string address;
    int width = 320;
    int height = 240;
    /// Render-loop poll period for scene/camera changes.
    common::Duration frame_period = std::chrono::milliseconds(5);
  };

  struct Stats {
    std::uint64_t frames_rendered = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
  };

  static common::Result<std::unique_ptr<RemoteRenderServer>> start(
      net::Network& net, std::shared_ptr<SceneStore> scene,
      const Options& options);
  ~RemoteRenderServer();
  RemoteRenderServer(const RemoteRenderServer&) = delete;
  RemoteRenderServer& operator=(const RemoteRenderServer&) = delete;
  void stop();

  std::size_t client_count() const;
  Stats stats() const;

 private:
  RemoteRenderServer() = default;
  void accept_loop(const std::stop_token& st);
  void client_pump(const std::stop_token& st, std::uint64_t id);
  void render_loop(const std::stop_token& st);

  struct Client {
    net::ConnectionPtr conn;
    Image last_frame;
    std::jthread pump;
  };

  Options options_;
  std::shared_ptr<SceneStore> scene_;
  net::ListenerPtr listener_;
  std::jthread accept_thread_;
  std::jthread render_thread_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Client> clients_;
  std::vector<std::jthread> graveyard_;
  std::uint64_t next_client_id_ = 1;
  Camera camera_;
  std::uint64_t camera_version_ = 1;
  Stats stats_;
  std::atomic<bool> stopped_{false};
};

class RemoteRenderClient {
 public:
  static common::Result<RemoteRenderClient> connect(net::Network& net,
                                                    const std::string& address,
                                                    common::Deadline deadline);
  /// Wraps an existing connection (lets benchmarks attach a link model).
  static RemoteRenderClient adopt(net::ConnectionPtr conn);

  /// Sends a viewpoint event (shared camera: affects all participants).
  common::Status set_view(const Camera& camera, common::Deadline deadline);

  /// Receives and decodes the next frame.
  common::Result<Image> await_frame(common::Deadline deadline);

  const Image& current_frame() const noexcept { return frame_; }

  /// Traffic counters of the underlying connection (zeros when detached).
  net::ConnStats stats() const {
    return conn_ ? conn_->stats() : net::ConnStats{};
  }

  void disconnect();

 private:
  net::ConnectionPtr conn_;
  Image frame_;
};

// ---------------------------------------------------------------------------
// Geometry-shipping pipeline (local rendering comparator)
// ---------------------------------------------------------------------------

/// Sends the scene geometry whenever it changes; the receiving side renders
/// locally. One sender, one receiver per channel.
class GeometryChannel {
 public:
  /// Server side: pushes scene snapshots over `conn` whenever `scene`
  /// changes (polled every `period`).
  static std::jthread start_sender(net::ConnectionPtr conn,
                                   std::shared_ptr<SceneStore> scene,
                                   common::Duration period);

  /// Client side: applies a received snapshot to a local SceneStore.
  /// Returns kTimeout when nothing arrived before the deadline.
  static common::Status receive_into(net::Connection& conn, SceneStore& scene,
                                     common::Deadline deadline);
};

}  // namespace cs::viz
