#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "common/bytes.hpp"

namespace cs::net {

using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

Status errno_status(const char* what) {
  return Status{StatusCode::kInternal,
                std::string(what) + ": " + std::strerror(errno)};
}

/// Waits for `events` on `fd` until the deadline. Returns kTimeout / kInternal.
Status wait_fd(int fd, short events, Deadline deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (!deadline.is_infinite()) {
      const auto rem = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(rem.count(), 0));
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::ok();
    if (rc == 0) return Status{StatusCode::kTimeout, "poll timeout"};
    if (errno == EINTR) continue;
    return errno_status("poll");
  }
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd, std::string peer)
      : fd_(fd), peer_(std::move(peer)) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking + poll() is what makes per-call deadlines possible.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  ~TcpConnection() override {
    close();
    // Only here, never in close(): a blocked send/recv may still be inside
    // a syscall on this fd, and closing it under that thread would race
    // (and could hand the fd number to an unrelated open). By destructor
    // time the shared_ptr count is zero, so no such thread exists.
    ::close(fd_);
  }

  Status send(ByteSpan message, Deadline deadline) override {
    if (message.size() > TcpNetwork::kMaxMessageBytes) {
      return Status{StatusCode::kInvalidArgument, "message too large"};
    }
    std::scoped_lock lock(send_mutex_);
    // A previous send may have timed out mid-message; its unsent tail must
    // reach the peer before anything else or the length-prefixed stream
    // desynchronizes permanently. Until the tail is flushed, no byte of a
    // new message enters the stream, so a timeout here is still retryable.
    if (!send_tail_.empty()) {
      std::size_t done = 0;
      const Status s =
          send_all(send_tail_.data(), send_tail_.size(), deadline, done);
      send_tail_.erase(send_tail_.begin(),
                       send_tail_.begin() + static_cast<std::ptrdiff_t>(done));
      if (!s.is_ok()) return s;
    }
    std::uint8_t header[4];
    const auto n = static_cast<std::uint32_t>(message.size());
    header[0] = static_cast<std::uint8_t>(n >> 24);
    header[1] = static_cast<std::uint8_t>(n >> 16);
    header[2] = static_cast<std::uint8_t>(n >> 8);
    header[3] = static_cast<std::uint8_t>(n);
    std::size_t header_done = 0;
    std::size_t payload_done = 0;
    Status s = send_all(header, sizeof(header), deadline, header_done);
    if (s.is_ok()) {
      s = send_all(message.data(), message.size(), deadline, payload_done);
    }
    if (!s.is_ok()) {
      // With zero progress nothing entered the stream — the timeout is
      // cleanly retryable. Otherwise preserve framing across the abort:
      // everything unsent becomes the tail the next send() must flush
      // first. The caller may treat the message as missed (supersedable
      // data), but the peer still observes a well-formed stream.
      if (header_done + payload_done > 0) {
        send_tail_.assign(header + header_done, header + sizeof(header));
        send_tail_.insert(send_tail_.end(), message.begin() + payload_done,
                          message.end());
      }
      return s;
    }
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(message.size(), std::memory_order_relaxed);
    return Status::ok();
  }

  Result<Bytes> recv(Deadline deadline) override {
    std::scoped_lock lock(recv_mutex_);
    std::uint8_t header[4];
    if (Status s = recv_all(header, sizeof(header), deadline); !s.is_ok())
      return s;
    const std::uint32_t n = (std::uint32_t{header[0]} << 24) |
                            (std::uint32_t{header[1]} << 16) |
                            (std::uint32_t{header[2]} << 8) |
                            std::uint32_t{header[3]};
    if (n > TcpNetwork::kMaxMessageBytes) {
      return Status{StatusCode::kProtocolError, "length prefix too large"};
    }
    Bytes payload(n);
    if (n > 0) {
      if (Status s = recv_all(payload.data(), n, deadline); !s.is_ok())
        return s;
    }
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(n, std::memory_order_relaxed);
    return payload;
  }

  void close() override {
    if (open_.exchange(false, std::memory_order_acq_rel)) {
      // Wakes every blocked poll/send/recv on the connection; the fd itself
      // stays open until the destructor.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool is_open() const override {
    return open_.load(std::memory_order_acquire);
  }

  std::string peer_address() const override { return peer_; }

  ConnStats stats() const override {
    return ConnStats{messages_sent_.load(), bytes_sent_.load(),
                     messages_received_.load(), bytes_received_.load()};
  }

 private:
  /// Writes `size` bytes, reporting progress through `done` so a caller
  /// aborted by a deadline knows exactly where the stream stands.
  Status send_all(const void* data, std::size_t size, Deadline deadline,
                  std::size_t& done) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    done = 0;
    while (done < size) {
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "connection closed"};
      }
      const int fd = fd_;
      const ssize_t rc = ::send(fd, p + done, size - done, MSG_NOSIGNAL);
      if (rc > 0) {
        done += static_cast<std::size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (Status s = wait_fd(fd, POLLOUT, deadline); !s.is_ok()) return s;
        continue;
      }
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        return Status{StatusCode::kClosed, "peer closed"};
      }
      return errno_status("send");
    }
    return Status::ok();
  }

  Status recv_all(void* data, std::size_t size, Deadline deadline) {
    auto* p = static_cast<std::uint8_t*>(data);
    std::size_t done = 0;
    while (done < size) {
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "connection closed"};
      }
      const int fd = fd_;
      const ssize_t rc = ::recv(fd, p + done, size - done, 0);
      if (rc > 0) {
        done += static_cast<std::size_t>(rc);
        continue;
      }
      if (rc == 0) return Status{StatusCode::kClosed, "peer closed"};
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (Status s = wait_fd(fd, POLLIN, deadline); !s.is_ok()) return s;
        continue;
      }
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    return Status::ok();
  }

  const int fd_;
  std::atomic<bool> open_{true};
  std::string peer_;
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  /// Unsent remainder of a message aborted mid-write by a deadline;
  /// flushed ahead of the next message (guarded by send_mutex_).
  Bytes send_tail_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {}

  ~TcpListener() override {
    close();
    ::close(fd_);  // see ~TcpConnection: never close a possibly-in-use fd
  }

  Result<ConnectionPtr> accept(Deadline deadline) override {
    for (;;) {
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "listener closed"};
      }
      sockaddr_in addr{};
      socklen_t len = sizeof(addr);
      const int conn =
          ::accept4(fd_, reinterpret_cast<sockaddr*>(&addr), &len, 0);
      if (conn >= 0) {
        char buf[64];
        ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
        return ConnectionPtr{std::make_shared<TcpConnection>(
            conn,
            std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port)))};
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (Status s = wait_fd(fd_, POLLIN, deadline); !s.is_ok()) return s;
        continue;
      }
      if (errno == EINTR) continue;
      // A post-shutdown accept4 fails with EINVAL; report it as the close
      // it is rather than an internal error.
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "listener closed"};
      }
      return errno_status("accept");
    }
  }

  void close() override {
    if (open_.exchange(false, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);  // wakes blocked accept() calls
    }
  }

  std::string address() const override { return address_; }

 private:
  const int fd_;
  std::atomic<bool> open_{true};
  std::string address_;
};

}  // namespace

Result<ListenerPtr> TcpNetwork::listen(const std::string& address) {
  const int port = std::atoi(address.c_str());
  if (port < 0 || port > 65535) {
    return Status{StatusCode::kInvalidArgument, "bad port: " + address};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return errno_status("bind");
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return errno_status("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return ListenerPtr{
      std::make_unique<TcpListener>(fd, std::to_string(ntohs(addr.sin_port)))};
}

Result<ConnectionPtr> TcpNetwork::connect(const std::string& address,
                                          Deadline deadline) {
  const int port = std::atoi(address.c_str());
  if (port <= 0 || port > 65535) {
    return Status{StatusCode::kInvalidArgument, "bad port: " + address};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    if (errno == ECONNREFUSED) {
      return Status{StatusCode::kNotFound, "no listener at port " + address};
    }
    return errno_status("connect");
  }
  (void)deadline;  // loopback connect completes immediately or refuses
  return ConnectionPtr{std::make_shared<TcpConnection>(fd, "127.0.0.1:" + address)};
}

}  // namespace cs::net
