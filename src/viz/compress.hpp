// Frame codecs for remote rendering.
//
// OpenGL VizServer's bandwidth argument (paper section 2.4: "this greatly
// reduces network traffic since only compressed bitmaps need to be sent")
// rests on two properties modelled here: run-length coding exploits the
// large flat regions of scientific renderings, and inter-frame deltas
// exploit the small camera/scene motion between consecutive frames.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "viz/image.hpp"

namespace cs::viz {

/// RLE-compresses a frame (key frame).
common::Bytes compress_frame(const Image& frame);

/// Decodes a compress_frame() buffer.
common::Result<Image> decompress_frame(common::ByteSpan data);

/// Compresses `frame` as a delta against `previous` (same dimensions):
/// XOR then RLE — unchanged regions become long zero runs. Falls back to a
/// key frame when dimensions differ.
common::Bytes compress_frame_delta(const Image& frame, const Image& previous);

/// Decodes either a key or a delta buffer (`previous` supplies the base
/// for deltas).
common::Result<Image> decompress_frame_delta(common::ByteSpan data,
                                             const Image& previous);

/// Stateful per-consumer delta encoder — the reentrant, state-explicit form
/// of compress_frame_delta(). Each remote participant owns one instance,
/// and the baseline advances only on commit(), i.e. only once the encoded
/// frame was actually delivered to that participant. A frame whose send
/// failed (or that was shed from a queue before ever being encoded) can
/// therefore never become a delta baseline: the decoder applies deltas
/// against the last frame it *received*, and the chain stays coherent
/// through drops, timeouts, and reconnects.
///
/// Baselines are held as shared pointers, never copied, so N consumers of
/// one broadcast share the published frame rather than owning N images.
///
/// Not internally synchronized: an instance belongs to the single pipeline
/// worker that encodes for its consumer.
class DeltaEncoder {
 public:
  /// Encodes `frame` as a delta against the committed baseline, or as a
  /// self-contained key frame when there is none (or dimensions changed).
  /// Stages `frame` as the pending baseline: call commit() once the bytes
  /// were delivered, reset() if they were not.
  common::Bytes encode(std::shared_ptr<const Image> frame);

  /// Stages `frame` as the pending baseline without encoding — for callers
  /// that obtained the wire bytes elsewhere (e.g. a broadcast-wide delta
  /// encoded once for every consumer whose baseline is the previous
  /// frame). Same contract as encode(): commit() on delivery, reset() on
  /// failure.
  void stage(std::shared_ptr<const Image> frame) {
    pending_ = std::move(frame);
  }

  /// The frame from the last encode()/stage() reached the consumer: it
  /// becomes the baseline for the next delta.
  void commit();

  /// Delivery failed or the consumer's state is unknown: drops all
  /// baseline state so the next encode() emits a key frame.
  void reset();

  /// True when the next encode() would emit a delta rather than a key
  /// frame (dimensions permitting).
  bool has_baseline() const noexcept { return baseline_ != nullptr; }

  /// The committed baseline (null when the next frame is a key frame).
  const Image* baseline() const noexcept { return baseline_.get(); }

 private:
  std::shared_ptr<const Image> baseline_;
  std::shared_ptr<const Image> pending_;
};

}  // namespace cs::viz
