// Particle record of the plasma solver.
//
// The fields mirror exactly what PEPC ships to its visualization: "particle
// data-space comprising coordinates, velocities, charge, processor number
// and tracking-label" (paper section 3.4). The StructDesc lets the record
// cross the VISIT channel with server-side conversion.
#pragma once

#include <cstdint>

#include "common/vec3.hpp"
#include "wire/structdesc.hpp"

namespace cs::pepc {

struct Particle {
  double pos[3] = {0, 0, 0};
  double vel[3] = {0, 0, 0};
  double charge = 0.0;
  double mass = 1.0;
  std::int32_t proc = 0;     ///< owning "processor" after decomposition
  std::int64_t label = 0;    ///< stable tracking label

  common::Vec3 position() const noexcept { return {pos[0], pos[1], pos[2]}; }
  common::Vec3 velocity() const noexcept { return {vel[0], vel[1], vel[2]}; }
  void set_position(const common::Vec3& p) noexcept {
    pos[0] = p.x; pos[1] = p.y; pos[2] = p.z;
  }
  void set_velocity(const common::Vec3& v) noexcept {
    vel[0] = v.x; vel[1] = v.y; vel[2] = v.z;
  }
};

/// Wire schema of a Particle (field names are the public contract).
wire::StructDesc particle_struct_desc();

/// Axis-aligned box of one processor domain — "a set of node coordinates
/// representing each processor domain", displayed as transparent boxes.
struct DomainBox {
  double lo[3] = {0, 0, 0};
  double hi[3] = {0, 0, 0};
  std::int32_t proc = 0;
  std::int32_t count = 0;  ///< particles in the domain
};

wire::StructDesc domain_box_struct_desc();

}  // namespace cs::pepc
