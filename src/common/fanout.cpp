#include "common/fanout.hpp"

#include <algorithm>
#include <utility>

namespace cs::common {

// ---------------------------------------------------------------------------
// OutboundQueue
// ---------------------------------------------------------------------------

OutboundQueue::Push OutboundQueue::push(Item item) {
  item.enqueued_ns = steady_now_ns();
  if (item.coalesce_key != 0) {
    for (auto& queued : items_) {
      if (queued.coalesce_key == item.coalesce_key) {
        // Supersede in place: the predecessor's position and accounting
        // slot carry over, so a burst of these can never grow the queue.
        queued = std::move(item);
        return Push::kCoalesced;
      }
    }
  }
  if (items_.size() >= capacity_) {
    // Full: shed the oldest *data* frame to make room, whatever the
    // incoming frame is — queued control frames are lossless and never
    // evicted. Only an all-control backlog is unresolvable: then a control
    // push rejects (the consumer has truly diverged and is disconnected)
    // and a data push sheds the incoming sample itself.
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->policy == OverflowPolicy::kDropOldest) {
        items_.erase(it);
        ++dropped_;
        items_.push_back(std::move(item));
        return Push::kQueuedDropOldest;
      }
    }
    if (item.policy == OverflowPolicy::kDisconnect) {
      return Push::kRejectedOverflow;
    }
    ++dropped_;
    return Push::kDroppedNewest;
  }
  items_.push_back(std::move(item));
  high_water_ = std::max(high_water_, items_.size());
  return Push::kQueued;
}

void OutboundQueue::seed(Item item) {
  item.enqueued_ns = steady_now_ns();
  items_.push_back(std::move(item));
  high_water_ = std::max(high_water_, items_.size());
}

OutboundQueue::Item OutboundQueue::pop() {
  if (items_.empty()) return {};
  Item item = std::move(items_.front());
  items_.pop_front();
  return item;
}

// ---------------------------------------------------------------------------
// FrameStageStats
// ---------------------------------------------------------------------------

void FrameStageStats::record(const OutboundQueue::Item& item,
                             std::uint64_t write_ns) noexcept {
  if (item.enqueued_ns != 0 && write_ns >= item.enqueued_ns) {
    enqueue_to_write.record(write_ns - item.enqueued_ns);
  }
  if (item.frame == nullptr) return;
  const FrameTrace& trace = item.frame->trace;
  if (trace.encode_ns != 0 && item.enqueued_ns >= trace.encode_ns) {
    encode_to_enqueue.record(item.enqueued_ns - trace.encode_ns);
  }
  if (trace.ingress_ns != 0 && trace.encode_ns >= trace.ingress_ns) {
    ingress_to_encode.record(trace.encode_ns - trace.ingress_ns);
  }
}

void FrameStageStats::merge(const FrameStageStats& other) noexcept {
  ingress_to_encode.merge(other.ingress_to_encode);
  encode_to_enqueue.merge(other.encode_to_enqueue);
  enqueue_to_write.merge(other.enqueue_to_write);
}

// ---------------------------------------------------------------------------
// ShardedFanout
// ---------------------------------------------------------------------------

namespace {

std::size_t default_shards() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw / 2, 1, 8);
}

}  // namespace

ShardedFanout::ShardedFanout(const Options& options, DeadCallback on_dead)
    : on_dead_(std::move(on_dead)) {
  const std::size_t n = options.shards == 0 ? default_shards() : options.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  queue_capacity_ = options.queue_capacity == 0 ? 1 : options.queue_capacity;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    shard->worker =
        std::jthread([this, s](std::stop_token st) { worker_loop(st, *s); });
  }
}

ShardedFanout::~ShardedFanout() { stop(); }

void ShardedFanout::stop() {
  if (stopped_.exchange(true)) return;
  for (auto& shard : shards_) {
    shard->worker.request_stop();
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedFanout::add(std::uint64_t id, Sink sink,
                        std::vector<OutboundQueue::Item> replay) {
  // Per-item sinks ride the batch drain through a loop adapter, so the
  // worker has exactly one delivery shape.
  add(id,
      BatchSink{[sink = std::move(sink)](
                    std::span<const OutboundQueue::Item> items,
                    std::size_t& delivered) {
        delivered = 0;
        for (const OutboundQueue::Item& item : items) {
          if (Status s = sink(item); !s.is_ok()) return s;
          ++delivered;
        }
        return Status::ok();
      }},
      std::move(replay));
}

void ShardedFanout::add(std::uint64_t id, BatchSink sink,
                        std::vector<OutboundQueue::Item> replay) {
  if (stopped_.load(std::memory_order_acquire)) return;
  Shard& shard = shard_for(id);
  const bool notify = !replay.empty();
  {
    std::scoped_lock lock(shard.mutex);
    auto sub = std::make_shared<Subscriber>(id, std::move(sink),
                                            queue_capacity_);
    // Replay is required state and is seeded past the queue bound if need
    // be; only frames published afterwards compete for the capacity.
    for (auto& item : replay) {
      if (item.policy == OverflowPolicy::kDisconnect) {
        ++shard.stats.control_enqueued;
      } else {
        ++shard.stats.data_enqueued;
      }
      sub->queue.seed(std::move(item));
      ++shard.pending;
    }
    shard.stats.queue_high_water =
        std::max(shard.stats.queue_high_water, sub->queue.high_water());
    shard.subs.insert_or_assign(id, std::move(sub));
  }
  if (notify) shard.cv.notify_all();
}

void ShardedFanout::add(std::uint64_t id, BytesSink sink,
                        std::vector<OutboundQueue::Item> replay) {
  add(id,
      Sink{[sink = std::move(sink)](const OutboundQueue::Item& item) {
        if (item.frame == nullptr) {
          // A per-consumer source payload reached a sink that only encodes
          // shared frames; data is shed, control is lossless-or-dead.
          return Status{StatusCode::kInvalidArgument,
                        "source payload sent to a bytes sink"};
        }
        return sink(*item.frame);
      }},
      std::move(replay));
}

void ShardedFanout::remove(std::uint64_t id) {
  Shard& shard = shard_for(id);
  std::scoped_lock lock(shard.mutex);
  auto it = shard.subs.find(id);
  if (it == shard.subs.end()) return;
  shard.pending -= it->second->queue.size();
  it->second->doomed = true;
  shard.subs.erase(it);
}

void ShardedFanout::account_push(Shard& shard, Subscriber& sub,
                                 OutboundQueue::Push result,
                                 OverflowPolicy policy,
                                 std::vector<std::uint64_t>& doomed) {
  switch (result) {
    case OutboundQueue::Push::kQueued:
      ++shard.pending;
      break;
    case OutboundQueue::Push::kQueuedDropOldest:
      // Net queue depth unchanged: one frame evicted, one accepted.
      ++shard.stats.data_dropped;
      break;
    case OutboundQueue::Push::kDroppedNewest:
      ++shard.stats.data_dropped;
      return;  // nothing entered the queue
    case OutboundQueue::Push::kRejectedOverflow:
      sub.doomed = true;
      doomed.push_back(sub.id);
      return;
    case OutboundQueue::Push::kCoalesced:
      // The replaced item keeps its accounting slot: it was counted when
      // enqueued and the replacement will be the one delivered.
      return;
  }
  if (policy == OverflowPolicy::kDisconnect) {
    ++shard.stats.control_enqueued;
  } else {
    ++shard.stats.data_enqueued;
  }
  shard.stats.queue_high_water =
      std::max(shard.stats.queue_high_water, sub.queue.high_water());
}

void ShardedFanout::publish(const OutboundQueue::Item& item) {
  publish_impl(item, nullptr);
}

void ShardedFanout::publish_except(std::uint64_t excluded_id,
                                   const OutboundQueue::Item& item) {
  publish_impl(item, &excluded_id);
}

void ShardedFanout::publish_impl(const OutboundQueue::Item& item,
                                 const std::uint64_t* excluded) {
  if (stopped_.load(std::memory_order_acquire)) return;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<std::uint64_t> doomed;
    bool notify = false;
    {
      std::scoped_lock lock(shard.mutex);
      for (auto& [id, sub] : shard.subs) {
        if (sub->doomed) continue;
        if (excluded != nullptr && id == *excluded) continue;
        const auto result = sub->queue.push(item);
        account_push(shard, *sub, result, item.policy, doomed);
        notify |= (result != OutboundQueue::Push::kRejectedOverflow);
      }
    }
    if (notify) shard.cv.notify_all();
    if (!doomed.empty()) disconnect(shard, doomed);
  }
}

bool ShardedFanout::send_to(std::uint64_t id, OutboundQueue::Item item) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  Shard& shard = shard_for(id);
  const OverflowPolicy policy = item.policy;
  std::vector<std::uint64_t> doomed;
  bool found = false;
  bool notify = false;
  {
    std::scoped_lock lock(shard.mutex);
    auto it = shard.subs.find(id);
    if (it != shard.subs.end() && !it->second->doomed) {
      found = true;
      const auto result = it->second->queue.push(std::move(item));
      account_push(shard, *it->second, result, policy, doomed);
      notify = (result != OutboundQueue::Push::kRejectedOverflow);
    }
  }
  if (notify) shard.cv.notify_all();
  if (!doomed.empty()) disconnect(shard, doomed);
  return found;
}

std::size_t ShardedFanout::subscriber_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    n += shard->subs.size();
  }
  return n;
}

FanoutStats ShardedFanout::stats() const {
  FanoutStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    FanoutShardStats s;
    {
      std::scoped_lock lock(shard->mutex);
      s = shard->stats;
      s.subscribers = shard->subs.size();
      s.queued_frames = shard->pending;
      out.stages.merge(shard->stages);
    }
    out.data_enqueued += s.data_enqueued;
    out.data_delivered += s.data_delivered;
    out.data_dropped += s.data_dropped;
    out.control_enqueued += s.control_enqueued;
    out.control_delivered += s.control_delivered;
    out.disconnects += s.disconnects;
    out.subscribers += s.subscribers;
    out.queued_frames += s.queued_frames;
    out.shards.push_back(s);
  }
  return out;
}

void ShardedFanout::disconnect(Shard& shard,
                               const std::vector<std::uint64_t>& ids) {
  std::vector<std::uint64_t> removed;
  removed.reserve(ids.size());
  {
    std::scoped_lock lock(shard.mutex);
    for (std::uint64_t id : ids) {
      auto it = shard.subs.find(id);
      if (it == shard.subs.end()) continue;  // raced with remove(): done
      shard.pending -= it->second->queue.size();
      it->second->doomed = true;
      shard.subs.erase(it);
      ++shard.stats.disconnects;
      removed.push_back(id);
    }
  }
  if (on_dead_) {
    for (std::uint64_t id : removed) on_dead_(id);
  }
}

void ShardedFanout::worker_loop(const std::stop_token& st, Shard& shard) {
  struct Burst {
    std::shared_ptr<Subscriber> sub;
    std::vector<OutboundQueue::Item> items;
    /// Leading items confirmed delivered by the sink this pass; these are
    /// the ones whose stage latencies get recorded.
    std::size_t stage_delivered = 0;
  };
  std::vector<Burst> bursts;
  std::vector<std::uint64_t> dead;
  // Delivery counters are accumulated per pass and folded into the shard
  // stats under one lock acquisition, not one per frame.
  std::uint64_t data_delivered = 0;
  std::uint64_t control_delivered = 0;
  std::uint64_t data_dropped = 0;
  while (true) {
    bursts.clear();
    dead.clear();
    {
      std::unique_lock lock(shard.mutex);
      shard.stats.data_delivered += data_delivered;
      shard.stats.control_delivered += control_delivered;
      shard.stats.data_dropped += data_dropped;
      data_delivered = control_delivered = data_dropped = 0;
      shard.cv.wait(lock, st, [&] { return shard.pending > 0; });
      if (st.stop_requested()) return;
      // Round-robin with a small bounded burst per subscriber per pass:
      // bursts amortize the pass overhead when queues run deep, while the
      // bound keeps one backlogged subscriber from starving its
      // shard-mates for more than one burst delivery. Each subscriber's
      // burst stays contiguous, so the sink sees it as one batch (one
      // vectored send on TCP).
      constexpr std::size_t kBurst = 8;
      bursts.reserve(shard.subs.size());
      for (auto& [id, sub] : shard.subs) {
        if (sub->doomed || sub->queue.empty()) continue;
        Burst burst;
        burst.sub = sub;
        for (std::size_t i = 0; i < kBurst && !sub->queue.empty(); ++i) {
          --shard.pending;
          burst.items.push_back(sub->queue.pop());
        }
        bursts.push_back(std::move(burst));
      }
    }
    // Sinks run outside the shard lock: a blocked send delays this shard's
    // current pass, never publish() or the other shards. A consumer whose
    // burst failed mid-batch gets the rest of it shed without another
    // blocking attempt — retrying a wedged consumer back to back would
    // cost a full send deadline per frame, stalling its shard-mates for
    // the whole burst; one deadline per pass is the bound. Control frames
    // are still always attempted (lossless-or-dead decides teardown).
    for (Burst& burst : bursts) {
      const auto& items = burst.items;
      std::size_t delivered = 0;
      Status s = burst.sub->sink(
          std::span<const OutboundQueue::Item>(items.data(), items.size()),
          delivered);
      delivered = std::min(delivered, items.size());
      burst.stage_delivered = delivered;
      for (std::size_t k = 0; k < delivered; ++k) {
        if (items[k].policy == OverflowPolicy::kDisconnect) {
          ++control_delivered;
        } else {
          ++data_delivered;
        }
      }
      if (s.is_ok() && delivered == items.size()) continue;
      if (s.is_ok()) {
        // The sink reported success but left items undelivered: treat the
        // first leftover as failed rather than silently losing it.
        s = Status{StatusCode::kInternal, "batch sink under-delivered"};
      }
      bool is_dead = false;
      for (std::size_t k = delivered; k < items.size(); ++k) {
        const bool control =
            items[k].policy == OverflowPolicy::kDisconnect;
        if (k == delivered) {
          // The item the sink actually failed on.
          if (s.code() == StatusCode::kClosed || control) {
            // Control traffic is lossless-or-dead: a control frame that
            // cannot be delivered within its deadline tears the
            // subscriber down.
            is_dead = true;
          } else {
            ++data_dropped;  // slow consumer missed one sample
          }
          continue;
        }
        if (!control) {
          ++data_dropped;  // shed the rest of the burst, no blocking retry
          continue;
        }
        std::size_t one = 0;
        const Status cs = burst.sub->sink(
            std::span<const OutboundQueue::Item>(&items[k], 1), one);
        if (cs.is_ok() && one == 1) {
          ++control_delivered;
        } else {
          is_dead = true;
        }
      }
      if (is_dead) dead.push_back(burst.sub->id);
    }
    if (!bursts.empty()) {
      // Fold this pass's stage latencies in under one lock acquisition; one
      // write stamp per pass is plenty of granularity (a pass is one sink
      // call per subscriber).
      const std::uint64_t write_ns = steady_now_ns();
      std::scoped_lock lock(shard.mutex);
      for (const Burst& burst : bursts) {
        for (std::size_t k = 0; k < burst.stage_delivered; ++k) {
          shard.stages.record(burst.items[k], write_ns);
        }
      }
    }
    if (!dead.empty()) disconnect(shard, dead);
  }
}

}  // namespace cs::common
