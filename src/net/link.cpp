#include "net/link.hpp"

#include <algorithm>

namespace cs::net {

using namespace std::chrono_literals;

LinkModel LinkModel::wan_europe() noexcept {
  LinkModel m;
  m.latency = 15ms;
  m.jitter = 2ms;
  m.bandwidth_bytes_per_sec = 100ULL * 1000 * 1000 / 8;
  return m;
}

LinkModel LinkModel::wan_transatlantic() noexcept {
  LinkModel m;
  m.latency = 60ms;
  m.jitter = 5ms;
  m.bandwidth_bytes_per_sec = 45ULL * 1000 * 1000 / 8;
  return m;
}

LinkModel LinkModel::lan() noexcept {
  LinkModel m;
  m.latency = 200us;
  m.bandwidth_bytes_per_sec = 1000ULL * 1000 * 1000 / 8;
  return m;
}

bool LinkScheduler::schedule(std::size_t size, common::TimePoint& deliver_at) {
  std::scoped_lock lock(mutex_);
  if (model_.drop_probability > 0.0 &&
      rng_.next_double() < model_.drop_probability) {
    return false;
  }
  const auto now = common::Clock::now();
  common::Duration transmit = common::Duration::zero();
  if (model_.bandwidth_bytes_per_sec > 0) {
    const double seconds = static_cast<double>(size) /
                           static_cast<double>(model_.bandwidth_bytes_per_sec);
    transmit = std::chrono::duration_cast<common::Duration>(
        std::chrono::duration<double>(seconds));
  }
  // The link serializes messages: transmission starts when the link frees up.
  const auto start = std::max(now, busy_until_);
  busy_until_ = start + transmit;
  common::Duration jitter = common::Duration::zero();
  if (model_.jitter > common::Duration::zero()) {
    jitter = std::chrono::duration_cast<common::Duration>(
        std::chrono::duration<double>(
            rng_.next_double() *
            std::chrono::duration<double>(model_.jitter).count()));
  }
  deliver_at = busy_until_ + model_.latency + jitter;
  return true;
}

}  // namespace cs::net
