// Message-oriented transport abstraction.
//
// Every protocol in the paper's environment (VISIT tagged messages, UNICORE
// transactions, vnc frame updates, vic media packets) is message-shaped, so
// the transport deals in whole messages rather than byte streams. Two
// implementations exist: the in-process network with a configurable link
// model (net/inproc.hpp) and real loopback TCP (net/tcp.hpp).
//
// All blocking calls take a Deadline and are guaranteed to return by it —
// the transport-level half of the VISIT timeout contract (paper section 3.2).
//
// Readiness surface: transports backed by a kernel object additionally
// expose native_handle() plus non-blocking try_recv()/try_send_many(), which
// is what net::EventHost needs to host thousands of connections on one epoll
// loop instead of a pump thread per connection. The blocking API remains the
// contract for tests and for transports without a handle (in-process).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace cs::net {

/// Traffic counters; readable concurrently with use.
struct ConnStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

/// One bidirectional, connected endpoint.
///
/// Thread-compatible per direction: one thread may send while another
/// receives, but two threads must not call send() (or recv()) concurrently
/// on the same connection.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Queues one message. Blocks while the peer's receive window is full;
  /// returns kTimeout if the window does not open before the deadline,
  /// kClosed if either side has closed.
  virtual common::Status send(common::ByteSpan message,
                              common::Deadline deadline) = 0;

  /// Queues a batch of messages, in order, under one shared deadline.
  ///
  /// `sent` reports how many *leading* messages were fully delivered when
  /// the call returns — on success it equals `messages.size()`; on failure
  /// messages `[0, sent)` are complete on the wire and message `sent` was
  /// the one that failed. Whatever the outcome, the peer always observes a
  /// well-formed message stream: a message either arrives intact or (for
  /// stream transports) its already-committed bytes are completed ahead of
  /// any later traffic, exactly like a deadline-aborted send().
  ///
  /// The default implementation loops over send(); transports override it
  /// to coalesce the batch into fewer syscalls (TCP: one bounded writev for
  /// many small framed messages).
  virtual common::Status send_many(std::span<const common::ByteSpan> messages,
                                   common::Deadline deadline,
                                   std::size_t& sent) {
    sent = 0;
    for (const common::ByteSpan& message : messages) {
      if (common::Status s = send(message, deadline); !s.is_ok()) return s;
      ++sent;
    }
    return common::Status::ok();
  }

  /// Receives the next message. Returns kTimeout if none arrives before the
  /// deadline, kClosed after the peer closed and the queue drained.
  virtual common::Result<common::Bytes> recv(common::Deadline deadline) = 0;

  /// Non-blocking receive: the next *complete* message if one can be
  /// produced without waiting, kUnavailable when the call would block
  /// (including mid-message — stream transports keep partial decode state
  /// across calls), kClosed once the peer is gone and everything buffered
  /// has been consumed. Obeys the same one-receiver-at-a-time rule as
  /// recv(), and shares its stream position: the two may be interleaved but
  /// never called concurrently.
  virtual common::Result<common::Bytes> try_recv() {
    auto r = recv(common::Deadline::expired());
    if (!r.is_ok() && r.status().code() == common::StatusCode::kTimeout) {
      return common::Status{common::StatusCode::kUnavailable, "would block"};
    }
    return r;
  }

  /// Non-blocking batch send: puts as much of `messages` on the wire as the
  /// transport will take without waiting. `sent` counts fully-committed
  /// leading messages exactly as in send_many(). Returns ok when everything
  /// (including any previously stashed partial tail) went out, kUnavailable
  /// when the call stopped early because it would block.
  ///
  /// `in_flight` is true when the stream stopped *inside* message `sent`:
  /// its already-committed bytes will be completed ahead of any later
  /// traffic by the transport, so the caller must treat it as sent (a
  /// resend would duplicate it). Message transports never set it — a
  /// message either went out whole or not at all — which is why the default
  /// below is only correct for them; stream transports must override with
  /// an exact report.
  virtual common::Status try_send_many(
      std::span<const common::ByteSpan> messages, std::size_t& sent,
      bool& in_flight) {
    in_flight = false;
    common::Status s = send_many(messages, common::Deadline::expired(), sent);
    if (s.code() == common::StatusCode::kTimeout) {
      return common::Status{common::StatusCode::kUnavailable, "would block"};
    }
    return s;
  }

  /// Closes both directions; idempotent. Wakes all blocked calls.
  virtual void close() = 0;

  virtual bool is_open() const = 0;

  /// Address of the remote endpoint (for logs and registry entries).
  virtual std::string peer_address() const = 0;

  virtual ConnStats stats() const = 0;

  /// Kernel handle for readiness registration (epoll/poll), or -1 when the
  /// transport has none (in-process). A non-negative handle promises that
  /// try_recv()/try_send_many() report kUnavailable exactly when the handle
  /// is not readable/writable, so a poller can park on it.
  virtual int native_handle() const { return -1; }
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Accepts inbound connections on one address.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits for the next inbound connection.
  virtual common::Result<ConnectionPtr> accept(common::Deadline deadline) = 0;

  /// Stops accepting; wakes blocked accept() calls with kClosed.
  virtual void close() = 0;

  virtual std::string address() const = 0;

  /// Kernel handle for readiness registration, or -1 when the transport has
  /// none. Readable means accept(Deadline::expired()) will yield a
  /// connection (or an error) without waiting.
  virtual int native_handle() const { return -1; }
};

using ListenerPtr = std::unique_ptr<Listener>;

/// Connection factory — one per "universe" (an in-process network instance,
/// or the host TCP stack).
class Network {
 public:
  virtual ~Network() = default;

  /// Binds a listener to `address`. kAlreadyExists if the address is taken.
  virtual common::Result<ListenerPtr> listen(const std::string& address) = 0;

  /// Connects to a listening address. kNotFound when nothing listens there,
  /// kTimeout when the listener does not accept in time.
  virtual common::Result<ConnectionPtr> connect(const std::string& address,
                                                common::Deadline deadline) = 0;
};

}  // namespace cs::net
