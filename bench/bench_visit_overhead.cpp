// E4 — the VISIT isolation guarantee (paper section 3.2).
//
// Claim: "A main design goal of VISIT was to minimize the load on the
// steered simulation and to prevent failures or slow operation of the
// visualization from disturbing the simulation progress. ... all operations
// are initiated by the simulation and are guaranteed to complete (or fail)
// after a user-specified timeout."
//
// Measured: PEPC step + sample emission under four visualization regimes —
// no visualization at all, a fast (draining) server, a dead server (accepts
// then never reads; the send window fills and sends time out), and a sweep
// of the user-specified timeout with the dead server. Step time must stay
// bounded by (roughly) step + timeout in every regime.
#include <benchmark/benchmark.h>

#include <thread>

#include "net/inproc.hpp"
#include "sim/pepc/pepc.hpp"
#include "visit/client.hpp"
#include "visit/server.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Deadline;

constexpr std::uint32_t kTagParticles = 1;

cs::pepc::PepcConfig sim_config() {
  cs::pepc::PepcConfig config;
  config.target_pairs = 256;
  config.processors = 1;
  return config;
}

/// Baseline: the simulation alone.
void BM_StepNoViz(benchmark::State& state) {
  cs::pepc::PepcSimulation sim(sim_config());
  const auto desc = cs::pepc::particle_struct_desc();
  for (auto _ : state) {
    sim.step();
  }
  state.SetLabel("no-viz");
}

/// A healthy visualization draining everything.
void BM_StepFastViz(benchmark::State& state) {
  cs::net::InProcNetwork net;
  auto server = cs::visit::VizServer::listen(net, {"viz", "pw"});
  std::jthread drainer([&] {
    auto session = server.value().accept(Deadline::after(5s));
    if (!session.is_ok()) return;
    for (;;) {
      auto event = session.value().serve(Deadline::after(1s));
      if (!event.is_ok() &&
          event.status().code() == cs::common::StatusCode::kClosed) {
        return;
      }
      if (event.is_ok() &&
          event.value().kind == cs::visit::SimSession::Event::Kind::kBye) {
        return;
      }
    }
  });
  auto client = cs::visit::SimClient::connect(net, {"viz", "pw", 100ms},
                                              Deadline::after(5s));
  if (!client.is_ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  cs::pepc::PepcSimulation sim(sim_config());
  const auto desc = cs::pepc::particle_struct_desc();
  for (auto _ : state) {
    sim.step();
    (void)client.value().send_struct(kTagParticles, desc,
                                     sim.particles().data(),
                                     sim.particles().size());
  }
  client.value().disconnect();
  state.SetLabel("fast-viz");
}

/// A dead visualization: accepted the connection, never reads. The send
/// window (64 KiB here) fills; every further send fails after `timeout`.
/// The step itself keeps running — that is the guarantee.
void BM_StepDeadViz(benchmark::State& state) {
  const auto timeout =
      std::chrono::milliseconds(static_cast<int>(state.range(0)));
  cs::net::InProcNetwork net;
  auto listener = net.listen("dead-viz");
  cs::net::ConnectionPtr held;
  std::jthread accepter([&] {
    auto conn = listener.value()->accept(Deadline::after(5s));
    if (!conn.is_ok()) return;
    (void)cs::visit::handshake_accept(*conn.value(), "pw",
                                      Deadline::after(5s));
    held = conn.value();  // hold it open, never read again
  });
  cs::net::ConnectOptions opts;
  opts.recv_capacity_bytes = 64 << 10;
  auto conn = net.connect("dead-viz", Deadline::after(5s), opts);
  if (!conn.is_ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  auto client = cs::visit::SimClient::adopt(
      conn.value(), {"dead-viz", "pw", timeout}, Deadline::after(5s));
  if (!client.is_ok()) {
    state.SkipWithError("handshake failed");
    return;
  }
  cs::pepc::PepcSimulation sim(sim_config());
  const auto desc = cs::pepc::particle_struct_desc();
  std::uint64_t timeouts = 0;
  for (auto _ : state) {
    sim.step();
    const auto s = client.value().send_struct(kTagParticles, desc,
                                              sim.particles().data(),
                                              sim.particles().size());
    if (s.code() == cs::common::StatusCode::kTimeout) ++timeouts;
  }
  state.counters["send_timeouts"] = static_cast<double>(timeouts);
  state.SetLabel("dead-viz/timeout_ms=" + std::to_string(timeout.count()));
}

}  // namespace

BENCHMARK(BM_StepNoViz)->Unit(benchmark::kMillisecond)->MinTime(0.3);
BENCHMARK(BM_StepFastViz)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);
BENCHMARK(BM_StepDeadViz)
    ->Arg(5)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);

BENCHMARK_MAIN();
