// One hosting surface for every service population, across both transports.
//
// net::EventHost gives a service flat thread counts for TCP connections, but
// it refuses handle-less transports (in-process connections have no fd to
// park an epoll on), so every service that ported to it kept a second,
// thread-per-connection code path for inproc peers — the exact shape the
// readiness migration exists to retire. ConnectionHost closes that gap:
//
//   * Connections with a native handle are hosted on an owned EventHost
//     (epoll pollers, bounded OutboundQueue egress, vectored sends).
//   * Handle-less connections share ONE fallback pump thread that sweeps
//     them all with Connection::try_recv() and drains each one's own
//     OutboundQueue — same callbacks, same overflow policies, same
//     lossless-or-dead control semantics, still a constant thread count.
//     The pump starts lazily on the first handle-less add(), so a TCP-only
//     service never pays for it.
//
// The request/reply hosting idiom lives here too: reply() enqueues one
// pre-encoded control frame (OverflowPolicy::kDisconnect) to a single
// connection — a peer that stops reading its replies is cut off rather than
// silently starved, which is the only correct behavior for control traffic.
//
// Callback contract (identical to EventHost): on_message/on_close run on
// the poller or fallback-pump thread and must not block; enqueue-only calls
// (send_to, reply, publish, add, remove) are safe from inside callbacks.
// remove()/stop() never fire on_close; connections torn down for cause
// (peer close, decode error, control overflow) always do, outside all locks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/fanout.hpp"
#include "common/status.hpp"
#include "net/event_host.hpp"
#include "net/transport.hpp"

namespace cs::net {

/// Aggregate view across both populations. `threads` is the whole point:
/// pollers + (fallback pump running ? 1 : 0), constant in connection count.
struct ConnectionHostStats {
  EventHostStats event_host;
  std::size_t fallback_hosted = 0;
  std::uint64_t fallback_messages_in = 0;
  std::uint64_t fallback_disconnects = 0;
  std::size_t hosted = 0;   ///< event-hosted + fallback connections
  std::size_t threads = 0;  ///< pollers + fallback pump (0 or 1)
  /// Heartbeat totals across both populations (pollers + fallback pump).
  std::uint64_t pings_sent = 0;
  std::uint64_t idle_disconnects = 0;
};

/// Hosts a service's whole connection population; see the file comment.
class ConnectionHost {
 public:
  struct Options {
    /// Forwarded to EventHost::Options.
    std::size_t pollers = 1;
    /// Per-connection outbound queue bound, both populations.
    std::size_t queue_capacity = 32;
    /// Fallback pump sleep when a full sweep moved no bytes. Bounds idle
    /// wakeups without adding visible latency at inproc test scale.
    common::Duration idle_slice = std::chrono::milliseconds(1);
    /// Liveness across both populations, same contract as
    /// EventHost::Options: a connection silent for heartbeat_interval is
    /// pinged, one silent past interval + grace is torn down through the
    /// normal on_close path with kTimeout. Zero (default) disables.
    common::Duration heartbeat_interval = common::Duration::zero();
    common::Duration heartbeat_grace = std::chrono::seconds(2);
    /// Encoded ping frame (data-class); empty = idle timeout without pings.
    common::Bytes ping_frame = {};
  };

  using MessageHandler = EventHost::MessageHandler;
  using CloseHandler = EventHost::CloseHandler;

  static common::Result<std::unique_ptr<ConnectionHost>> start(
      const Options& options);

  ~ConnectionHost();
  ConnectionHost(const ConnectionHost&) = delete;
  ConnectionHost& operator=(const ConnectionHost&) = delete;

  /// Stops both populations: joins the pollers and the fallback pump, closes
  /// every hosted connection, discards pending frames. No on_close callbacks
  /// fire. Idempotent — the uniform tail of every service's stop() order.
  void stop();

  /// Hosts `conn` under caller-chosen `id` (unique across both populations;
  /// EventHost reserves the top bit). Routes by native_handle(): kernel
  /// transports go to the EventHost, handle-less ones to the fallback pump.
  /// `replay` frames are seeded atomically with registration, ahead of any
  /// later publish. Returns false (taking no ownership) when the id is taken
  /// or the host is stopped.
  bool add(std::uint64_t id, ConnectionPtr conn, MessageHandler on_message,
           CloseHandler on_close,
           std::vector<common::OutboundQueue::Item> replay = {});

  /// Deregisters and closes `id`, discarding pending frames. Idempotent; no
  /// on_close. Safe from any thread, including `id`'s own callbacks.
  void remove(std::uint64_t id);

  /// Enqueues one frame for `id` under the item's policy; never blocks on
  /// I/O. Returns false when `id` is not hosted.
  bool send_to(std::uint64_t id, common::OutboundQueue::Item item);

  bool send_to(std::uint64_t id, common::FramePtr frame,
               common::OverflowPolicy policy) {
    return send_to(
        id, common::OutboundQueue::Item{std::move(frame), policy, nullptr});
  }

  /// The request/reply idiom: enqueues pre-encoded reply bytes as control
  /// traffic (kDisconnect — lossless-or-dead). Returns false when `id` is
  /// not hosted.
  bool reply(std::uint64_t id, common::Bytes encoded) {
    return send_to(id, common::make_frame(std::move(encoded)),
                   common::OverflowPolicy::kDisconnect);
  }

  /// Enqueues a copy of `item` to every hosted connection, both populations.
  void publish(const common::OutboundQueue::Item& item);

  void publish(const common::FramePtr& frame, common::OverflowPolicy policy) {
    publish(common::OutboundQueue::Item{frame, policy, nullptr});
  }

  /// publish() to everyone except `excluded_id` (relay traffic whose origin
  /// is itself hosted).
  void publish_except(std::uint64_t excluded_id,
                      const common::OutboundQueue::Item& item);

  std::size_t size() const;
  /// Pollers + fallback pump — the constant the flat-thread assertions pin.
  std::size_t thread_count() const;
  ConnectionHostStats stats() const;

  /// The underlying EventHost, for event-driven AcceptPump construction.
  EventHost& event_host() noexcept { return *event_host_; }

 private:
  /// One handle-less connection on the shared fallback pump. Queue and
  /// pending slot are guarded by mutex_; `alive` lets a sweep that already
  /// snapshotted the entry skip callbacks for a concurrently removed id.
  struct Fallback {
    ConnectionPtr conn;
    MessageHandler on_message;
    CloseHandler on_close;
    common::OutboundQueue queue;
    /// Popped but not yet deliverable (peer window full): retried next
    /// sweep so ordering survives backpressure.
    common::OutboundQueue::Item pending;
    std::atomic<bool> alive{true};
    /// Why the connection was torn down for cause; written by the thread
    /// that won the alive exchange, read by it when firing on_close.
    common::Status close_cause = common::Status::ok();
    /// Last inbound activity (hosting counts); stamped by the pump thread,
    /// read by the liveness sweep on the same thread.
    std::uint64_t last_in_ns = 0;
    /// When the last heartbeat ping was enqueued; pump thread only.
    std::uint64_t last_ping_ns = 0;

    Fallback(ConnectionPtr c, MessageHandler m, CloseHandler cl,
             std::size_t capacity)
        : conn(std::move(c)),
          on_message(std::move(m)),
          on_close(std::move(cl)),
          queue(capacity) {}
  };
  using FallbackPtr = std::shared_ptr<Fallback>;

  ConnectionHost() = default;

  void pump_loop(const std::stop_token& st);
  /// Drains one fallback connection's ingress+egress; returns true when any
  /// message moved. Appends entries torn down for cause to `doomed` (their
  /// on_close fires after the sweep, outside the lock).
  bool sweep_one(std::uint64_t id, const FallbackPtr& entry,
                 std::vector<std::pair<std::uint64_t, FallbackPtr>>& doomed,
                 const std::stop_token& st);
  /// Removes `id` from the registry; returns the entry when it was present
  /// (caller fires on_close outside the lock when warranted).
  FallbackPtr extract(std::uint64_t id);
  /// Fans `item` out to the fallback population (excluding `excluded_id`;
  /// pass kNoExclusion for everyone), applying overflow policies and firing
  /// doomed consumers' on_close outside the lock.
  void publish_fallback(std::uint64_t excluded_id,
                        const common::OutboundQueue::Item& item);
  /// Pump-thread liveness pass over `snapshot`: pings the silent, appends
  /// the dead (kTimeout) to `doomed` for the sweep's callback phase.
  void heartbeat_fallback(
      const std::vector<std::pair<std::uint64_t, FallbackPtr>>& snapshot,
      std::vector<std::pair<std::uint64_t, FallbackPtr>>& doomed);

  Options options_;
  std::unique_ptr<EventHost> event_host_;
  std::uint64_t heartbeat_interval_ns_ = 0;  ///< 0 = liveness disabled
  std::uint64_t heartbeat_grace_ns_ = 0;
  common::FramePtr ping_frame_;  ///< null when no ping is configured
  std::atomic<std::uint64_t> fallback_pings_{0};
  std::atomic<std::uint64_t> fallback_idle_disconnects_{0};

  mutable std::mutex mutex_;
  std::map<std::uint64_t, FallbackPtr> fallback_;
  std::jthread pump_;  ///< lazily started; guarded by mutex_
  std::atomic<bool> pump_running_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> fallback_messages_in_{0};
  std::atomic<std::uint64_t> fallback_disconnects_{0};
};

}  // namespace cs::net
