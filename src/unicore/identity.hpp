// User identities and the trust machinery of the UNICORE tiers.
//
// UNICORE's "single sign-on with strong authentication" (paper section 3.1)
// rests on X.509 certificates checked at the Gateway and mapped to a local
// login (xlogin) by the NJS's user database (UUDB). We model a certificate
// as a subject plus an unforgeable-within-the-simulation fingerprint.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace cs::unicore {

/// Stand-in for an X.509 user certificate.
struct Certificate {
  std::string subject;      ///< e.g. "CN=John Brooke, O=U Manchester"
  std::string fingerprint;  ///< unique token standing in for the key pair

  friend bool operator==(const Certificate&, const Certificate&) = default;
  friend auto operator<=>(const Certificate&, const Certificate&) = default;
};

/// Creates a certificate with a fingerprint derived from the subject and a
/// secret; two calls with the same arguments yield the same certificate.
Certificate issue_certificate(const std::string& subject,
                              const std::string& secret);

/// Gateway-side trust anchor: which certificates may enter the protected
/// domain at all.
class TrustStore {
 public:
  void trust(const Certificate& cert) { trusted_.insert(cert.fingerprint); }
  void revoke(const Certificate& cert) { trusted_.erase(cert.fingerprint); }
  bool is_trusted(const Certificate& cert) const {
    return trusted_.contains(cert.fingerprint);
  }
  std::size_t size() const noexcept { return trusted_.size(); }

 private:
  std::set<std::string> trusted_;
};

/// NJS-side user database: maps a certificate to the local account
/// (xlogin) the incarnated job runs under.
class Uudb {
 public:
  void add_mapping(const Certificate& cert, std::string xlogin) {
    mapping_[cert.fingerprint] = std::move(xlogin);
  }
  std::optional<std::string> xlogin_for(const Certificate& cert) const {
    auto it = mapping_.find(cert.fingerprint);
    if (it == mapping_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, std::string> mapping_;
};

}  // namespace cs::unicore
