// Application-side steering instrumentation — the RealityGrid-style API.
//
// "The RealityGrid project has defined APIs for the steering calls which
// can be used to link from the application to the services." (paper section
// 2.3). A simulation creates one SteeringControl, registers its steerable
// parameters (pointers into its own state) and monitored quantities
// (read-only probes), then calls apply_pending() once per main-loop
// iteration. Everything a remote steerer does lands between iterations —
// parameters never change mid-step.
//
// SteeringControl implements ogsa::SteeringBackend, so wrapping it in an
// ogsa::SteeringService and publishing that to a registry is one line each;
// that is exactly the Fig. 1 / Fig. 2 wiring.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "ogsa/steering_service.hpp"

namespace cs::steer {

/// Control verbs a steerer can issue; delivered to the app's main loop.
enum class Command { kNone, kPause, kResume, kStop, kCheckpoint, kEmitSample };

std::string_view to_string(Command command) noexcept;

class SteeringControl : public ogsa::SteeringBackend {
 public:
  // ---- registration (call from the application before steering starts) --

  /// Registers a steerable double living in the application. The pointer
  /// must outlive this object; it is written only inside apply_pending().
  void register_steerable(const std::string& name, double* value,
                          double min_value, double max_value);

  /// Registers a steerable integer.
  void register_steerable_int(const std::string& name, std::int64_t* value,
                              std::int64_t min_value, std::int64_t max_value);

  /// Registers a monitored (read-only) quantity; the probe is evaluated
  /// only inside apply_pending(), i.e. on the application thread.
  void register_monitored(const std::string& name,
                          std::function<double()> probe);

  // ---- main-loop calls (application thread) ----------------------------

  /// Applies queued parameter updates and refreshes monitored values.
  /// Returns the names of parameters that changed.
  std::vector<std::string> apply_pending();

  /// Pops the next queued command (kNone when idle).
  Command next_command();

  /// Convenience: apply updates, honor pause (blocking until resume/stop),
  /// and return kStop/kCheckpoint/kEmitSample if requested.
  Command sync();

  /// Publishes a one-line status shown to steering clients.
  void set_status(const std::string& status);

  /// Bumps the sample counter (the app emits via its VISIT channel).
  void note_sample_emitted();
  std::uint64_t samples_emitted() const;

  bool stop_requested() const;

  // ---- SteeringBackend (service thread) --------------------------------

  std::vector<ParamInfo> list_params() const override;
  common::Result<std::string> get_param(const std::string& name) const override;
  common::Status set_param(const std::string& name,
                           const std::string& value) override;
  common::Status command(const std::string& command) override;
  std::string status() const override;

 private:
  struct DoubleParam {
    double* target;
    double shadow;
    double min_value, max_value;
    std::optional<double> pending;
  };
  struct IntParam {
    std::int64_t* target;
    std::int64_t shadow;
    std::int64_t min_value, max_value;
    std::optional<std::int64_t> pending;
  };
  struct Monitor {
    std::function<double()> probe;
    double cached = 0.0;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, DoubleParam> doubles_;
  std::map<std::string, IntParam> ints_;
  std::map<std::string, Monitor> monitors_;
  std::deque<Command> commands_;
  bool paused_ = false;
  bool stop_ = false;
  std::string status_ = "initialising";
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace cs::steer
