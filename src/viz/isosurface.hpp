// Isosurface extraction — the rendering step of the RealityGrid demo
// ("the isosurfaces were rendered and the output of the graphics pipes
// returned to the user's laptop", paper section 2.2).
//
// Implementation: marching *tetrahedra*. Each grid cell is split into six
// tetrahedra; each tetrahedron contributes 0-2 triangles depending on which
// of its four corners lie above the isolevel. Unlike full marching cubes
// it needs no case tables and produces a crack-free surface.
#pragma once

#include "viz/mesh.hpp"

namespace cs::viz {

/// Extracts the isolevel surface of a scalar field.
TriangleMesh extract_isosurface(const ScalarField& field, float isolevel);

}  // namespace cs::viz
