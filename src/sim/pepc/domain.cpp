#include "sim/pepc/domain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace cs::pepc {

using common::Vec3;

std::uint64_t interleave3(std::uint32_t x, std::uint32_t y,
                          std::uint32_t z) noexcept {
  const auto spread = [](std::uint64_t v) {
    v &= 0x1fffff;  // 21 bits
    v = (v | (v << 32)) & 0x1f00000000ffffULL;
    v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
    v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
    v = (v | (v << 2)) & 0x1249249249249249ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

std::uint64_t morton_key(const Vec3& position, const Vec3& lo,
                         double size) noexcept {
  const double scale = size > 0 ? (static_cast<double>(1 << 21) - 1) / size : 0;
  const auto clampc = [&](double v) {
    return static_cast<std::uint32_t>(
        std::clamp(v * scale, 0.0, static_cast<double>((1 << 21) - 1)));
  };
  return interleave3(clampc(position.x - lo.x), clampc(position.y - lo.y),
                     clampc(position.z - lo.z));
}

std::vector<DomainBox> decompose(std::span<Particle> particles,
                                 int processors) {
  std::vector<DomainBox> boxes;
  if (particles.empty() || processors <= 0) return boxes;

  Vec3 lo = particles[0].position(), hi = lo;
  for (const auto& p : particles) {
    lo.x = std::min(lo.x, p.pos[0]);
    lo.y = std::min(lo.y, p.pos[1]);
    lo.z = std::min(lo.z, p.pos[2]);
    hi.x = std::max(hi.x, p.pos[0]);
    hi.y = std::max(hi.y, p.pos[1]);
    hi.z = std::max(hi.z, p.pos[2]);
  }
  const double size = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-12});

  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    keyed[i] = {morton_key(particles[i].position(), lo, size),
                static_cast<std::uint32_t>(i)};
  }
  std::sort(keyed.begin(), keyed.end());

  boxes.assign(static_cast<std::size_t>(processors), DomainBox{});
  for (auto& b : boxes) {
    b.lo[0] = b.lo[1] = b.lo[2] = std::numeric_limits<double>::max();
    b.hi[0] = b.hi[1] = b.hi[2] = std::numeric_limits<double>::lowest();
  }
  const std::size_t n = particles.size();
  for (std::size_t rank = 0; rank < n; ++rank) {
    const auto proc = static_cast<int>(
        std::min<std::size_t>(rank * static_cast<std::size_t>(processors) / n,
                              static_cast<std::size_t>(processors) - 1));
    Particle& p = particles[keyed[rank].second];
    p.proc = proc;
    auto& b = boxes[static_cast<std::size_t>(proc)];
    b.proc = proc;
    ++b.count;
    for (int a = 0; a < 3; ++a) {
      b.lo[a] = std::min(b.lo[a], p.pos[a]);
      b.hi[a] = std::max(b.hi[a], p.pos[a]);
    }
  }
  // Empty domains (more procs than particles) get a degenerate box at lo.
  for (auto& b : boxes) {
    if (b.count == 0) {
      b.lo[0] = b.lo[1] = b.lo[2] = 0;
      b.hi[0] = b.hi[1] = b.hi[2] = 0;
    }
  }
  return boxes;
}

}  // namespace cs::pepc
