// Glue between the shared fan-out primitive and the message transport:
// a BatchSink that delivers a drained burst of pre-encoded frames through
// one Connection::send_many call (a single vectored syscall over TCP)
// instead of one send() per frame.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/fanout.hpp"
#include "net/transport.hpp"

namespace cs::net {

/// Returns a batch sink that sends every pre-encoded frame of a burst via
/// `conn->send_many` under one fresh `timeout` deadline per burst. The
/// send_many contract maps directly onto the BatchSink one: `sent` becomes
/// `delivered`, and a mid-batch deadline abort leaves the wire stream
/// well-formed (the transport completes any partially-written frame ahead
/// of later traffic).
///
/// Only shared-frame items are routable here; like
/// ShardedFanout::BytesSink, a source-payload item fails delivery as an
/// undeliverable frame (kInvalidArgument).
inline common::ShardedFanout::BatchSink batched_connection_sink(
    ConnectionPtr conn, common::Duration timeout) {
  return [conn = std::move(conn), timeout](
             std::span<const common::OutboundQueue::Item> items,
             std::size_t& delivered) -> common::Status {
    delivered = 0;
    std::vector<common::ByteSpan> spans;
    spans.reserve(items.size());
    for (const common::OutboundQueue::Item& item : items) {
      if (item.frame == nullptr) break;  // source payload: not routable
      spans.push_back(*item.frame);
    }
    common::Status s =
        conn->send_many(std::span<const common::ByteSpan>(spans),
                        common::Deadline::after(timeout), delivered);
    if (s.is_ok() && delivered < items.size()) {
      return common::Status{common::StatusCode::kInvalidArgument,
                            "source payload sent to a bytes sink"};
    }
    return s;
  };
}

}  // namespace cs::net
