// Tests for the UNICORE substrate: AJO serialization, incarnation, TSI
// execution, NJS authentication/authorization, gateway trust and routing,
// client transactions, and the VISIT-over-UNICORE proxy path end to end.
#include <gtest/gtest.h>

#include <thread>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "unicore/ajo.hpp"
#include "unicore/client.hpp"
#include "unicore/gateway.hpp"
#include "unicore/identity.hpp"
#include "unicore/njs.hpp"
#include "unicore/tsi.hpp"
#include "unicore/upl.hpp"
#include "visit/client.hpp"
#include "visit/proxy.hpp"
#include "visit/viewer.hpp"

namespace cs::unicore {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::Status;
using common::StatusCode;

// ------------------------------------------------------------------- AJO --

TEST(Ajo, SerializeParseRoundTrip) {
  Ajo ajo = AjoBuilder("pepc-run", "juelich")
                .import_file("input.dat", "density=1\nbeam|velocity=0.3")
                .execute("pepc", {{"particles", "1000"}, {"steps", "10"}})
                .export_file("energies.dat")
                .start_steering("s3cret")
                .build();
  auto parsed = Ajo::parse(ajo.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), ajo);
}

TEST(Ajo, EscapingSurvivesHostileContent) {
  Ajo ajo = AjoBuilder("evil|job\nname", "site%20x")
                .import_file("f|le\n%", "100% evil\ncontent|with|pipes")
                .build();
  auto parsed = Ajo::parse(ajo.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), ajo);
}

TEST(Ajo, ParseRejectsGarbage) {
  EXPECT_FALSE(Ajo::parse("").is_ok());
  EXPECT_FALSE(Ajo::parse("NOTAJO|x|y").is_ok());
  EXPECT_FALSE(Ajo::parse("AJO1|name|site\nBOGUS|a|b").is_ok());
  EXPECT_FALSE(Ajo::parse("AJO1|name|site\nEXECUTE|app|x|noequals").is_ok());
}

TEST(Incarnation, TasksBecomeTargetCommands) {
  Ajo ajo = AjoBuilder("job", "site")
                .import_file("a.txt", "hello")
                .execute("solver", {{"n", "5"}})
                .export_file("out.txt")
                .build();
  auto script = incarnate(ajo);
  ASSERT_TRUE(script.is_ok());
  ASSERT_EQ(script.value().size(), 3u);
  EXPECT_EQ(script.value()[0].op, TargetCommand::Op::kPutFile);
  EXPECT_EQ(script.value()[1].op, TargetCommand::Op::kRunApplication);
  EXPECT_EQ(script.value()[2].op, TargetCommand::Op::kExportFile);
}

TEST(Incarnation, SteeringProxyStartsBeforeApplications) {
  Ajo ajo = AjoBuilder("job", "site")
                .execute("solver")
                .start_steering("pw")
                .build();
  auto script = incarnate(ajo);
  ASSERT_TRUE(script.is_ok());
  EXPECT_EQ(script.value()[0].op, TargetCommand::Op::kStartVisitProxy);
  EXPECT_EQ(script.value()[1].op, TargetCommand::Op::kRunApplication);
}

// ----------------------------------------------------------------- TSI ----

struct TsiFixture {
  net::InProcNetwork net;
  TargetSystem tsi{net, {"juelich", 2, common::Duration::zero()}};

  TsiFixture() {
    tsi.register_application("copy", [](ExecutionContext& ctx) {
      // Copies input.txt to output.txt and logs.
      auto it = ctx.uspace->find("input.txt");
      if (it == ctx.uspace->end()) {
        return Status{StatusCode::kNotFound, "input.txt missing"};
      }
      (*ctx.uspace)["output.txt"] = it->second;
      *ctx.stdout_text += "copied " + std::to_string(it->second.size()) +
                          " bytes as " + ctx.xlogin + "\n";
      return Status::ok();
    });
    tsi.register_application("spin", [](ExecutionContext& ctx) {
      while (!ctx.cancelled->load()) {
        std::this_thread::sleep_for(1ms);
      }
      return Status{StatusCode::kClosed, "cancelled"};
    });
  }

  JobOutcome run(std::vector<TargetCommand> script,
                 const std::string& id = "j1") {
    EXPECT_TRUE(tsi.submit(id, "user1", std::move(script)).is_ok());
    const auto deadline = Deadline::after(5s);
    while (!deadline.has_expired()) {
      const auto s = tsi.state(id);
      if (s == JobState::kSuccessful || s == JobState::kFailed) break;
      std::this_thread::sleep_for(2ms);
    }
    auto outcome = tsi.outcome(id);
    EXPECT_TRUE(outcome.is_ok());
    return outcome.value();
  }
};

TEST(Tsi, ExecutesFullScript) {
  TsiFixture f;
  std::vector<TargetCommand> script;
  script.push_back({TargetCommand::Op::kPutFile, "input.txt", "payload", {}});
  script.push_back({TargetCommand::Op::kRunApplication, "copy", "", {}});
  script.push_back({TargetCommand::Op::kExportFile, "output.txt", "", {}});
  auto outcome = f.run(std::move(script));
  EXPECT_EQ(outcome.state, JobState::kSuccessful);
  EXPECT_EQ(outcome.exported_files.at("output.txt"), "payload");
  EXPECT_NE(outcome.stdout_text.find("copied 7 bytes as user1"),
            std::string::npos);
}

TEST(Tsi, MissingApplicationFailsJob) {
  TsiFixture f;
  std::vector<TargetCommand> script;
  script.push_back({TargetCommand::Op::kRunApplication, "no-such-app", "", {}});
  auto outcome = f.run(std::move(script));
  EXPECT_EQ(outcome.state, JobState::kFailed);
  EXPECT_NE(outcome.error_text.find("no such application"), std::string::npos);
}

TEST(Tsi, MissingExportFailsJob) {
  TsiFixture f;
  std::vector<TargetCommand> script;
  script.push_back({TargetCommand::Op::kExportFile, "ghost.txt", "", {}});
  auto outcome = f.run(std::move(script));
  EXPECT_EQ(outcome.state, JobState::kFailed);
}

TEST(Tsi, DuplicateJobIdRejected) {
  TsiFixture f;
  ASSERT_TRUE(f.tsi.submit("dup", "u", {}).is_ok());
  auto s = f.tsi.submit("dup", "u", {});
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(Tsi, AbortCancelsRunningApplication) {
  TsiFixture f;
  std::vector<TargetCommand> script;
  script.push_back({TargetCommand::Op::kRunApplication, "spin", "", {}});
  ASSERT_TRUE(f.tsi.submit("spinner", "u", std::move(script)).is_ok());
  // Wait for it to start running, then abort.
  auto deadline = Deadline::after(5s);
  while (f.tsi.state("spinner") != JobState::kRunning &&
         !deadline.has_expired()) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(f.tsi.abort("spinner").is_ok());
  deadline = Deadline::after(5s);
  while (f.tsi.state("spinner") == JobState::kRunning &&
         !deadline.has_expired()) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(f.tsi.state("spinner"), JobState::kFailed);
}

TEST(Tsi, QueueDelayHoldsJobs) {
  net::InProcNetwork net;
  TargetSystem tsi{net, {"slow-site", 1, 50ms}};
  tsi.register_application("noop",
                           [](ExecutionContext&) { return Status::ok(); });
  std::vector<TargetCommand> script;
  script.push_back({TargetCommand::Op::kRunApplication, "noop", "", {}});
  const auto t0 = common::Clock::now();
  ASSERT_TRUE(tsi.submit("q1", "u", script).is_ok());
  while (tsi.state("q1") != JobState::kSuccessful &&
         common::Clock::now() - t0 < 5s) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_GE(common::Clock::now() - t0, 45ms);
}

TEST(Tsi, ScriptIntrospectionShowsIncarnation) {
  TsiFixture f;
  std::vector<TargetCommand> script;
  script.push_back({TargetCommand::Op::kPutFile, "input.txt", "x", {}});
  script.push_back(
      {TargetCommand::Op::kRunApplication, "copy", "", {{"k", "v"}}});
  (void)f.run(std::move(script), "intro");
  const auto lines = f.tsi.script_of("intro");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "put input.txt (1 bytes)");
  EXPECT_EQ(lines[1], "run copy k=v");
}

// --------------------------------------------------- gateway + njs + client --

struct GridFixture {
  net::InProcNetwork net;
  TargetSystem tsi{net, {"juelich", 2, common::Duration::zero()}};
  Njs njs{"juelich", tsi};
  std::unique_ptr<Gateway> gateway;
  Certificate alice = issue_certificate("CN=Alice", "alice-key");
  Certificate bob = issue_certificate("CN=Bob", "bob-key");
  Certificate mallory = issue_certificate("CN=Mallory", "mallory-key");

  GridFixture() {
    auto gw = Gateway::start(net, {"gw:juelich"});
    EXPECT_TRUE(gw.is_ok());
    gateway = std::move(gw).value();
    gateway->trust_store().trust(alice);
    gateway->trust_store().trust(bob);
    // Mallory is deliberately not trusted.
    njs.uudb().add_mapping(alice, "jb0001");
    njs.uudb().add_mapping(bob, "jb0002");
    gateway->register_vsite(njs);
    tsi.register_application("hello", [](ExecutionContext& ctx) {
      *ctx.stdout_text += "hello from " + ctx.vsite + "\n";
      (*ctx.uspace)["result.txt"] = "42";
      return Status::ok();
    });
  }

  UnicoreClient client_for(const Certificate& cert) {
    return UnicoreClient{net, {"gw:juelich", cert, 5s}};
  }
};

TEST(Grid, SubmitWaitFetchOutcome) {
  GridFixture f;
  auto client = f.client_for(f.alice);
  Ajo ajo = AjoBuilder("hello-job", "juelich")
                .execute("hello")
                .export_file("result.txt")
                .build();
  auto job = client.submit(ajo);
  ASSERT_TRUE(job.is_ok()) << job.status().to_string();
  auto outcome = client.wait("juelich", job.value(), Deadline::after(5s));
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().state, JobState::kSuccessful);
  EXPECT_EQ(outcome.value().exported_files.at("result.txt"), "42");
  EXPECT_NE(outcome.value().stdout_text.find("hello from juelich"),
            std::string::npos);
}

TEST(Grid, UntrustedCertificateRejectedAtGateway) {
  GridFixture f;
  auto client = f.client_for(f.mallory);
  Ajo ajo = AjoBuilder("evil", "juelich").execute("hello").build();
  auto job = client.submit(ajo);
  ASSERT_FALSE(job.is_ok());
  EXPECT_EQ(job.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(f.gateway->stats().rejected_untrusted, 1u);
}

TEST(Grid, TrustedButUnmappedUserRejectedAtNjs) {
  GridFixture f;
  Certificate carol = issue_certificate("CN=Carol", "carol-key");
  f.gateway->trust_store().trust(carol);  // gateway lets her in...
  auto client = f.client_for(carol);
  Ajo ajo = AjoBuilder("job", "juelich").execute("hello").build();
  auto job = client.submit(ajo);
  ASSERT_FALSE(job.is_ok());  // ...but the NJS has no xlogin for her
  EXPECT_EQ(job.status().code(), StatusCode::kPermissionDenied);
}

TEST(Grid, UnknownVsiteRejected) {
  GridFixture f;
  auto client = f.client_for(f.alice);
  Ajo ajo = AjoBuilder("job", "atlantis").execute("hello").build();
  auto job = client.submit(ajo);
  ASSERT_FALSE(job.is_ok());
  EXPECT_EQ(job.status().code(), StatusCode::kNotFound);
}

TEST(Grid, ForeignJobInvisibleWithoutInvite) {
  GridFixture f;
  auto alice = f.client_for(f.alice);
  auto bob = f.client_for(f.bob);
  Ajo ajo = AjoBuilder("private", "juelich").execute("hello").build();
  auto job = alice.submit(ajo);
  ASSERT_TRUE(job.is_ok());
  auto peek = bob.status("juelich", job.value());
  ASSERT_FALSE(peek.is_ok());
  EXPECT_EQ(peek.status().code(), StatusCode::kPermissionDenied);
  // After an invite, Bob can see it.
  ASSERT_TRUE(alice.invite("juelich", job.value(), f.bob).is_ok());
  auto peek2 = bob.status("juelich", job.value());
  EXPECT_TRUE(peek2.is_ok());
}

TEST(Grid, StatusOfUnknownJob) {
  GridFixture f;
  auto client = f.client_for(f.alice);
  auto s = client.status("juelich", "juelich-job-999");
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound);
}

TEST(Grid, GatewayHostsTcpClientsWithoutPerConnectionThreads) {
  // Sixteen TCP clients land on the gateway's shared readiness host; the
  // thread count stays where one client left it, and every connection still
  // gets a full authenticate-route-reply round trip.
  net::TcpNetwork net;
  auto gateway = Gateway::start(net, {"0"});
  ASSERT_TRUE(gateway.is_ok());
  const Certificate cert = issue_certificate("CN=Fleet", "fleet-key");
  gateway.value()->trust_store().trust(cert);
  const std::string address = gateway.value()->address();

  std::vector<net::ConnectionPtr> conns;
  std::size_t threads_with_one = 0;
  for (int i = 0; i < 16; ++i) {
    auto conn = net.connect(address, Deadline::after(5s));
    ASSERT_TRUE(conn.is_ok());
    conns.push_back(std::move(conn).value());
    if (i == 0) threads_with_one = gateway.value()->service_threads();
  }
  EXPECT_EQ(gateway.value()->service_threads(), threads_with_one);
  EXPECT_LE(gateway.value()->service_threads(), 2u);

  // Status transactions against a vsite that is never registered: the
  // gateway authenticates, routes, and answers kNotFound — a full wire
  // round trip per connection without standing up an NJS.
  UplRequest request;
  request.op = UplOp::kStatus;
  request.identity = cert;
  request.vsite = "nowhere";
  request.job_id = "j1";
  const common::Bytes encoded = encode_upl_request(request);
  for (auto& conn : conns) {
    ASSERT_TRUE(
        conn->send(common::ByteSpan(encoded), Deadline::after(2s)).is_ok());
    auto raw = conn->recv(Deadline::after(2s));
    ASSERT_TRUE(raw.is_ok());
    auto response = decode_upl_response(common::ByteSpan(raw.value()));
    ASSERT_TRUE(response.is_ok());
    EXPECT_EQ(response.value().status.code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(gateway.value()->stats().transactions, 16u);
  EXPECT_EQ(gateway.value()->service_threads(), threads_with_one);

  gateway.value()->stop();
  gateway.value()->stop();  // idempotent
  EXPECT_FALSE(net.connect(address, Deadline::after(200ms)).is_ok());
}

// ------------------------------------------------ VISIT-over-UNICORE path --

/// A steerable mock simulation registered at the TSI: it connects to the
/// job's VISIT proxy, emits samples, and polls a "gain" parameter until
/// the steerer sets it above 10 (or it gives up).
Status steerable_sim(ExecutionContext& ctx) {
  visit::SimClientOptions opts;
  opts.server_address = ctx.visit_address;
  opts.password = ctx.visit_password;
  opts.default_timeout = 200ms;
  auto client =
      visit::SimClient::connect(*ctx.net, opts, Deadline::after(2s));
  if (!client.is_ok()) return client.status();
  double gain = 1.0;
  for (int step = 0; step < 500 && !ctx.cancelled->load(); ++step) {
    const std::vector<double> sample{static_cast<double>(step), gain};
    (void)client.value().send(1, sample);
    auto param = client.value().request<double>(2);
    if (param.is_ok() && !param.value().empty()) gain = param.value()[0];
    if (gain > 10.0) {
      *ctx.stdout_text += "steered to gain=" + std::to_string(gain) + "\n";
      client.value().disconnect();
      return Status::ok();
    }
    std::this_thread::sleep_for(2ms);
  }
  client.value().disconnect();
  return Status{StatusCode::kTimeout, "never steered above 10"};
}

TEST(Grid, VisitSteeringThroughProxies) {
  GridFixture f;
  f.tsi.register_application("steerable-sim", steerable_sim);
  auto client = f.client_for(f.alice);
  Ajo ajo = AjoBuilder("steered", "juelich")
                .start_steering("visit-pw")
                .execute("steerable-sim")
                .build();
  auto job = client.submit(ajo);
  ASSERT_TRUE(job.is_ok());

  // Attach the client plugin (polling proxy) and steer through it.
  visit::ProxyClient::Options popts;
  popts.poll_period = 5ms;
  auto plugin = visit::ProxyClient::attach(
      client.visit_transactor("juelich", job.value()), popts);
  // The proxy may not exist yet (job still queued): retry briefly.
  const auto deadline = Deadline::after(5s);
  while (!plugin.is_ok() && !deadline.has_expired()) {
    std::this_thread::sleep_for(10ms);
    plugin = visit::ProxyClient::attach(
        client.visit_transactor("juelich", job.value()), popts);
  }
  ASSERT_TRUE(plugin.is_ok()) << plugin.status().to_string();

  auto viewer = visit::ViewerClient::adopt(plugin.value()->connection(),
                                           {"", "", 500ms});
  // Receive at least one sample broadcast by the simulation.
  bool got_sample = false;
  for (int i = 0; i < 100 && !got_sample; ++i) {
    auto e = viewer.poll(Deadline::after(500ms));
    if (e.is_ok() && e.value().kind == visit::ViewerClient::Event::Kind::kData &&
        e.value().tag == 1) {
      got_sample = true;
    }
  }
  EXPECT_TRUE(got_sample);

  // Steer: set gain above the threshold; the sim should finish SUCCESSFUL.
  ASSERT_TRUE(viewer.steer<double>(2, {25.0}).is_ok());
  auto outcome = client.wait("juelich", job.value(), Deadline::after(10s));
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value().state, JobState::kSuccessful)
      << outcome.value().error_text;
  EXPECT_NE(outcome.value().stdout_text.find("steered to gain=25"),
            std::string::npos);
}

TEST(Grid, SecondUserNeedsInviteToSteer) {
  GridFixture f;
  f.tsi.register_application("steerable-sim", steerable_sim);
  auto alice = f.client_for(f.alice);
  auto bob = f.client_for(f.bob);
  Ajo ajo = AjoBuilder("collab", "juelich")
                .start_steering("visit-pw")
                .execute("steerable-sim")
                .build();
  auto job = alice.submit(ajo);
  ASSERT_TRUE(job.is_ok());

  // Bob cannot attach before being invited.
  auto deadline = Deadline::after(5s);
  visit::ProxyClient::Options popts;
  popts.poll_period = 5ms;
  // Wait until the proxy exists (owner can attach) to make Bob's failure
  // unambiguous (authorization, not "not started yet").
  auto alice_plugin = visit::ProxyClient::attach(
      alice.visit_transactor("juelich", job.value()), popts);
  while (!alice_plugin.is_ok() && !deadline.has_expired()) {
    std::this_thread::sleep_for(10ms);
    alice_plugin = visit::ProxyClient::attach(
        alice.visit_transactor("juelich", job.value()), popts);
  }
  ASSERT_TRUE(alice_plugin.is_ok());

  auto bob_attempt = visit::ProxyClient::attach(
      bob.visit_transactor("juelich", job.value()), popts);
  ASSERT_FALSE(bob_attempt.is_ok());
  EXPECT_EQ(bob_attempt.status().code(), StatusCode::kPermissionDenied);

  ASSERT_TRUE(alice.invite("juelich", job.value(), f.bob).is_ok());
  auto bob_plugin = visit::ProxyClient::attach(
      bob.visit_transactor("juelich", job.value()), popts);
  EXPECT_TRUE(bob_plugin.is_ok());

  // Unblock the sim so the fixture tears down fast.
  auto viewer = visit::ViewerClient::adopt(alice_plugin.value()->connection(),
                                           {"", "", 500ms});
  (void)viewer.steer<double>(2, {25.0});
  (void)alice.wait("juelich", job.value(), Deadline::after(10s));
}

}  // namespace
}  // namespace cs::unicore
