// loadgen — traffic-generation and soak-testing CLI (ctsTraffic-style).
//
//   loadgen --scenario=mux --connections=64 --duration-ms=3000 --out=r.json
//   loadgen --scenario=raw --pattern=duplex --transport=tcp --rate=500
//
// Distributed (controller/worker driver split over TCP):
//
//   loadgen --role=controller --scenario=mux --workers=2 --listen=45117
//   loadgen --role=worker --controller=10.0.0.7:45117 --name=worker0
//
// The controller hosts the target service plus the control channel; each
// worker dials in, receives its slice of the workload, and the controller
// merges the shards into one report with per-worker breakdowns. Workers may
// be launched before the controller — dialing retries until it is up.
// Addresses are HOST:PORT; a bare PORT keeps the loopback shorthand, so
// single-machine runs and scripts predating multi-host drive still work.
//
// Scenarios:
//   mux      steering fan-out soak on visit::Multiplexer (1 master + viewers)
//   viz      viewpoint/frame loop on viz::RemoteRenderServer (shared camera)
//   media    fixed-rate media stream over an ag multicast group + bridge
//   control  relay soak on visit::ControlServer (1 actor + observers)
//   desktop  framebuffer push soak on ag::DesktopShareServer
//   gateway  UPL request/reply soak on unicore::Gateway
//   raw      generic Workload (push/pull/duplex/burst) against a built-in
//            LoadPeer over the chosen transport (inproc or tcp)
//   chaos-mux     mux soak with every viewer dialed through a seeded
//                 fault-injecting network; flapped viewers reconnect with
//                 backoff and the report carries the chaos ledger
//                 (injected/observed/recovered + recovery percentiles)
//   chaos-bridge  same fault plan against receivers behind the ag unicast
//                 bridge (no replay: recovery = first live frame)
//
// The JSON report follows the Google Benchmark schema, so it lands in the
// same tooling as the BENCH_*.json files from `cmake --build . --target
// run_benches`. Human summary goes to stderr, JSON to --out (or stdout).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "loadgen/driver.hpp"
#include "loadgen/scenarios.hpp"
#include "loadgen/worker.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"

namespace {

using namespace cs;

struct CliOptions {
  std::string scenario = "mux";
  std::string transport = "inproc";
  std::string out_path;
  /// local = the classic single-process run; controller/worker = the
  /// distributed driver split (always TCP).
  std::string role = "local";
  std::string controller_address;  ///< worker: control address to dial
  std::string listen = "0";        ///< controller: control bind address
  std::string name = "worker";     ///< worker: name announced on JOIN
  std::size_t workers = 2;         ///< controller: fleet size awaited
  /// service_metrics keys that must be present AND nonzero in the report.
  std::vector<std::string> assert_nonzero;
  /// service_metrics keys that must be present (zero is acceptable).
  std::vector<std::string> assert_present;
  loadgen::ScenarioOptions scenario_options;
  loadgen::Workload workload;
};

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const auto comma = value.find(',', start);
    const auto len =
        (comma == std::string::npos ? value.size() : comma) - start;
    if (len > 0) out.push_back(value.substr(start, len));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --scenario=mux|viz|media|control|desktop|gateway|raw|\n"
      "             chaos-mux|chaos-bridge\n"
      "                                 what to run (default mux)\n"
      "  --connections=N                concurrent participants (default 64)\n"
      "  --duration-ms=N                measurement window (default 2000)\n"
      "  --rate=R                       producer msgs|frames per sec "
      "(default 200)\n"
      "  --payload=N                    payload bytes (default 1024)\n"
      "  --seed=N                       RNG seed (default 1)\n"
      "  --shards=N                     mux/viz/media fan-out worker shards "
      "(default auto)\n"
      "  --bridged=N                    media: receivers placed behind the "
      "unicast\n"
      "                                 bridge (default: half)\n"
      "  --stalled=N                    viz: wedge N participants (tiny "
      "recv window,\n"
      "                                 never drained) to probe slow-client "
      "isolation\n"
      "  --use-event-host=0|1           mux: host TCP viewers on the shared "
      "epoll\n"
      "                                 loop (default 1; 0 is the "
      "thread-per-viewer\n"
      "                                 baseline)\n"
      "  --max-service-threads=N        mux/control/desktop/gateway: fail if "
      "the\n"
      "                                 service owns more than N threads with "
      "the\n"
      "                                 full fleet connected (default 0 = no "
      "bound)\n"
      "  --metricsz=0|1                 mux: serve /metricsz and scrape it "
      "mid-run\n"
      "                                 into the report (default 1)\n"
      "  --fault-after-ops=N            chaos: close each initial connection "
      "after\n"
      "                                 N transport ops (default 64)\n"
      "  --fault-ops-jitter=N           chaos: seeded per-connection spread "
      "added\n"
      "                                 to the close threshold (default 32)\n"
      "  --fault-delay-ms=N             chaos: added latency per op on "
      "faulted\n"
      "                                 connections (default 0)\n"
      "  --assert-nonzero=k1,k2,...     fail unless each service-metric key "
      "is\n"
      "                                 present and nonzero in the report\n"
      "  --assert-present=k1,k2,...     fail unless each service-metric key "
      "is\n"
      "                                 present (zero allowed)\n"
      "  --out=FILE                     write the JSON report here "
      "(default stdout)\n"
      "distributed options:\n"
      "  --role=local|controller|worker    driver role (default local)\n"
      "  --workers=N                       controller: worker fleet size "
      "(default 2)\n"
      "  --listen=ADDR                     controller: control bind address,\n"
      "                                    HOST:PORT or bare PORT (default 0 "
      "=\n"
      "                                    kernel-assigned loopback port; "
      "bind\n"
      "                                    0.0.0.0:PORT for multi-host "
      "drive)\n"
      "  --controller=HOST:PORT            worker: control address to dial "
      "(bare\n"
      "                                    PORT dials loopback)\n"
      "  --name=NAME                       worker: name announced on join\n"
      "raw-scenario options:\n"
      "  --pattern=push|pull|duplex|burst  traffic shape (default duplex)\n"
      "  --transport=inproc|tcp            substrate for raw and mux "
      "(default inproc)\n"
      "  --min-payload=N --max-payload=N   seeded payload sizing range\n"
      "  --ramp-ms=N                       connect ramp-up (default 0)\n"
      "  --batch=N                         wire batch depth: frames per "
      "send_many\n"
      "                                    (request/reply: pipelining depth; "
      "default 1)\n",
      argv0);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_args(int argc, char** argv, CliOptions& cli) {
  auto& s = cli.scenario_options;
  auto& w = cli.workload;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    std::uint64_t n = 0;
    if (key == "--scenario") {
      cli.scenario = value;
    } else if (key == "--transport") {
      cli.transport = value;
      if (value == "tcp") {
        s.transport = loadgen::ScenarioOptions::Transport::kTcp;
      } else if (value == "inproc") {
        s.transport = loadgen::ScenarioOptions::Transport::kInProc;
      } else {
        return false;
      }
    } else if (key == "--out") {
      cli.out_path = value;
    } else if (key == "--pattern") {
      auto pattern = loadgen::parse_pattern(value);
      if (!pattern.is_ok()) return false;
      w.pattern = pattern.value();
    } else if (key == "--connections" && parse_u64(value.c_str(), n)) {
      s.connections = n;
      w.connections = n;
    } else if (key == "--duration-ms" && parse_u64(value.c_str(), n)) {
      s.duration = std::chrono::milliseconds(n);
      w.duration = std::chrono::milliseconds(n);
    } else if (key == "--ramp-ms" && parse_u64(value.c_str(), n)) {
      w.ramp_up = std::chrono::milliseconds(n);
    } else if (key == "--rate") {
      const double rate = std::atof(value.c_str());
      s.rate_per_sec = rate;
      w.messages_per_sec = rate;
    } else if (key == "--payload" && parse_u64(value.c_str(), n)) {
      s.payload_bytes = n;
      w.min_payload = n;
      w.max_payload = n;
    } else if (key == "--min-payload" && parse_u64(value.c_str(), n)) {
      w.min_payload = n;
    } else if (key == "--max-payload" && parse_u64(value.c_str(), n)) {
      w.max_payload = n;
    } else if (key == "--seed" && parse_u64(value.c_str(), n)) {
      s.seed = n;
      w.seed = n;
    } else if (key == "--shards" && parse_u64(value.c_str(), n)) {
      s.fanout_shards = n;
    } else if (key == "--bridged" && parse_u64(value.c_str(), n)) {
      s.bridged_connections = n;
    } else if (key == "--batch" && parse_u64(value.c_str(), n)) {
      w.batch = n;
    } else if (key == "--stalled" && parse_u64(value.c_str(), n)) {
      s.stalled_connections = n;
    } else if (key == "--use-event-host" && parse_u64(value.c_str(), n)) {
      s.use_event_host = (n != 0);
    } else if (key == "--max-service-threads" && parse_u64(value.c_str(), n)) {
      s.max_service_threads = n;
    } else if (key == "--metricsz" && parse_u64(value.c_str(), n)) {
      s.scrape_metricsz = (n != 0);
    } else if (key == "--fault-after-ops" && parse_u64(value.c_str(), n)) {
      s.fault_after_ops = n;
    } else if (key == "--fault-ops-jitter" && parse_u64(value.c_str(), n)) {
      s.fault_after_ops_jitter = n;
    } else if (key == "--fault-delay-ms" && parse_u64(value.c_str(), n)) {
      s.fault_delay = std::chrono::milliseconds(n);
    } else if (key == "--role") {
      cli.role = value;
    } else if (key == "--controller") {
      cli.controller_address = value;
    } else if (key == "--listen") {
      cli.listen = value;
    } else if (key == "--name") {
      cli.name = value;
    } else if (key == "--workers" && parse_u64(value.c_str(), n)) {
      cli.workers = n;
    } else if (key == "--assert-nonzero") {
      cli.assert_nonzero = split_csv(value);
    } else if (key == "--assert-present") {
      cli.assert_present = split_csv(value);
    } else {
      std::fprintf(stderr, "unknown or malformed option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

common::Result<loadgen::Report> run_raw(const CliOptions& cli) {
  std::unique_ptr<net::Network> network;
  std::string address;
  if (cli.transport == "tcp") {
    network = std::make_unique<net::TcpNetwork>();
    address = "0";  // kernel-assigned loopback port
  } else if (cli.transport == "inproc") {
    network = std::make_unique<net::InProcNetwork>();
    address = "loadgen:peer";
  } else {
    return common::Status{common::StatusCode::kInvalidArgument,
                          "unknown transport: " + cli.transport};
  }
  auto peer = loadgen::LoadPeer::start(*network, address);
  if (!peer.is_ok()) return peer.status();
  // The raw CLI default is closed-loop for request/reply patterns; burst
  // needs an explicit or default rate.
  loadgen::Workload workload = cli.workload;
  if (workload.pattern == loadgen::Pattern::kBurst &&
      workload.messages_per_sec <= 0.0) {
    workload.messages_per_sec = 200.0;
  }
  auto report = loadgen::run_workload(*network, peer.value()->address(),
                                      workload, peer.value().get());
  peer.value()->stop();
  return report;
}

/// --role=worker: one full control session against --controller, then exit.
int run_worker(const CliOptions& cli) {
  if (cli.controller_address.empty()) {
    std::fprintf(stderr, "--role=worker requires --controller=HOST:PORT\n");
    return 2;
  }
  net::TcpNetwork network;
  loadgen::WorkerAgent::Options options;
  options.controller_address = cli.controller_address;
  options.name = cli.name;
  auto shard = loadgen::WorkerAgent::run(network, options);
  if (!shard.is_ok()) {
    std::fprintf(stderr, "worker %s failed: %s\n", cli.name.c_str(),
                 shard.status().to_string().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "worker %s: %llu conns, %llu ops, %llu timeouts, %llu errors\n",
               cli.name.c_str(),
               static_cast<unsigned long long>(shard.value().connections),
               static_cast<unsigned long long>(shard.value().ops),
               static_cast<unsigned long long>(shard.value().timeouts),
               static_cast<unsigned long long>(shard.value().errors));
  return 0;
}

/// --role=controller: host the target service + control channel, merge the
/// worker shards into the one report main() post-processes.
common::Result<loadgen::Report> run_controller(const CliOptions& cli) {
  net::TcpNetwork network;
  loadgen::DistributedOptions options;
  options.workers = cli.workers;
  options.control_listen = cli.listen;
  options.workload = cli.workload;
  options.scenario = cli.scenario_options;
  options.on_listening = [](const std::string& address) {
    std::fprintf(stderr, "controller listening on %s\n", address.c_str());
  };
  if (options.workload.pattern == loadgen::Pattern::kBurst &&
      options.workload.messages_per_sec <= 0.0) {
    options.workload.messages_per_sec = 200.0;
  }
  if (cli.scenario == "mux") {
    return loadgen::run_distributed_mux_soak(network, options);
  }
  if (cli.scenario == "raw") {
    return loadgen::run_distributed_raw(network, options);
  }
  return common::Status{
      common::StatusCode::kInvalidArgument,
      "scenario '" + cli.scenario + "' has no distributed form (mux|raw)"};
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  // Scenario and raw-workload defaults: a 2-second, 64-connection soak.
  cli.workload.connections = cli.scenario_options.connections;
  cli.workload.duration = cli.scenario_options.duration;
  cli.workload.messages_per_sec = 0.0;
  if (!parse_args(argc, argv, cli)) {
    usage(argv[0]);
    return 2;
  }

  if (cli.role == "worker") return run_worker(cli);
  if (cli.role != "local" && cli.role != "controller") {
    usage(argv[0]);
    return 2;
  }

  common::Result<loadgen::Report> report =
      common::Status{common::StatusCode::kInvalidArgument,
                     "unknown scenario: " + cli.scenario};
  if (cli.role == "controller") {
    report = run_controller(cli);
  } else if (cli.scenario == "mux") {
    report = loadgen::run_multiplexer_soak(cli.scenario_options);
  } else if (cli.scenario == "viz") {
    report = loadgen::run_vizserver_loop(cli.scenario_options);
  } else if (cli.scenario == "media") {
    report = loadgen::run_media_bridge(cli.scenario_options);
  } else if (cli.scenario == "control") {
    report = loadgen::run_control_soak(cli.scenario_options);
  } else if (cli.scenario == "desktop") {
    report = loadgen::run_desktop_soak(cli.scenario_options);
  } else if (cli.scenario == "gateway") {
    report = loadgen::run_gateway_soak(cli.scenario_options);
  } else if (cli.scenario == "chaos-mux") {
    report = loadgen::run_chaos_mux_soak(cli.scenario_options);
  } else if (cli.scenario == "chaos-bridge") {
    report = loadgen::run_chaos_bridge_soak(cli.scenario_options);
  } else if (cli.scenario == "raw") {
    report = run_raw(cli);
  } else {
    usage(argv[0]);
    return 2;
  }

  if (!report.is_ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  // Server-side truth assertions: the report's service_metrics always carry
  // every registered key explicitly (zero = measured-and-zero), so absence
  // means the metric was never wired — as hard a failure as a zero where
  // traffic must have flowed.
  bool asserts_ok = true;
  auto find_metric = [&](const std::string& key) -> const double* {
    for (const auto& [name, value] : report.value().service_metrics) {
      if (name == key) return &value;
    }
    return nullptr;
  };
  for (const auto& key : cli.assert_present) {
    if (find_metric(key) == nullptr) {
      std::fprintf(stderr, "assert-present failed: no service metric '%s'\n",
                   key.c_str());
      asserts_ok = false;
    }
  }
  for (const auto& key : cli.assert_nonzero) {
    const double* value = find_metric(key);
    if (value == nullptr) {
      std::fprintf(stderr, "assert-nonzero failed: no service metric '%s'\n",
                   key.c_str());
      asserts_ok = false;
    } else if (*value == 0.0) {
      std::fprintf(stderr, "assert-nonzero failed: '%s' is zero\n",
                   key.c_str());
      asserts_ok = false;
    }
  }
  std::fprintf(stderr, "%s\n", loadgen::summary_line(report.value()).c_str());
  const std::string json = loadgen::to_json(report.value());
  if (cli.out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(cli.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cli.out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  // A soak that completed but moved no traffic is a failure, not a report.
  if (!asserts_ok) return 1;
  // So is a distributed run that lost workers: the JSON (flagged partial)
  // is still written above for forensics, but CI must not read it as a
  // clean data point.
  if (report.value().is_partial()) {
    std::fprintf(stderr, "report is partial: one or more workers lost\n");
    return 1;
  }
  return report.value().ops > 0 ? 0 : 1;
}
