// Real loopback TCP implementation of the transport interfaces.
//
// The in-process network is the default substrate; this one exists to show
// the middleware runs unchanged over genuine sockets (the paper's systems
// were socket programs) and is exercised by a handful of integration tests.
// Messages are framed with a 4-byte big-endian length prefix.
#pragma once

#include <cstdint>
#include <string>

#include "net/transport.hpp"

namespace cs::net {

/// Network backed by the host TCP stack, bound to 127.0.0.1.
///
/// Addresses are "port" strings, e.g. "19741"; "0" lets the kernel pick
/// (query the listener's address() for the result).
class TcpNetwork : public Network {
 public:
  common::Result<ListenerPtr> listen(const std::string& address) override;
  common::Result<ConnectionPtr> connect(const std::string& address,
                                        common::Deadline deadline) override;

  /// Largest accepted message; guards against corrupt length prefixes.
  static constexpr std::size_t kMaxMessageBytes = 256u << 20;
};

}  // namespace cs::net
