// Minimal thread-safe leveled logger.
//
// Default level is kWarn so tests and benchmarks stay quiet; examples raise
// it to kInfo to narrate the demo scenarios.
#pragma once

#include <sstream>
#include <string>

namespace cs::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr (serialized across threads).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cs::common

#define CS_LOG(level, component)                                  \
  if (static_cast<int>(level) < static_cast<int>(cs::common::log_level())) {} \
  else cs::common::detail::LogStream(level, component)

#define CS_LOG_DEBUG(component) CS_LOG(cs::common::LogLevel::kDebug, component)
#define CS_LOG_INFO(component) CS_LOG(cs::common::LogLevel::kInfo, component)
#define CS_LOG_WARN(component) CS_LOG(cs::common::LogLevel::kWarn, component)
#define CS_LOG_ERROR(component) CS_LOG(cs::common::LogLevel::kError, component)
