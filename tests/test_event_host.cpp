// Lifecycle tests for net::EventHost and net::AcceptPump: many idle
// connections burst-activating on one poller thread, incremental decode
// across wakeups, EPOLLOUT resumption of a partially-written batch, and
// teardown from inside a callback. Runs under TSan in CI like the fanout
// suites.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fanout.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/event_host.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "util.hpp"

namespace cs::net {
namespace {

using namespace std::chrono_literals;
using common::Bytes;
using common::Deadline;
using common::OverflowPolicy;
using common::Status;
using common::StatusCode;
using testutil::bytes_of;
using testutil::TcpPair;
using testutil::text_of;
using testutil::wait_until;

// ------------------------------------------------------------ transport --

TEST(Readiness, TryRecvReportsWouldBlockThenDelivers) {
  TcpPair pair;
  pair.connect();
  auto r = pair.server->try_recv();
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  ASSERT_TRUE(pair.client->send(bytes_of("ping"), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(wait_until([&] {
    auto got = pair.server->try_recv();
    if (!got.is_ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
      return false;
    }
    EXPECT_EQ(text_of(got.value()), "ping");
    return true;
  }));
}

TEST(Readiness, RecvKeepsPartialProgressAcrossDeadlines) {
  TcpPair pair;
  pair.connect();
  // Half a frame on the wire: a deadline-bounded recv must time out
  // *without* losing the consumed prefix, or the stream desynchronizes.
  const std::string payload = "split frame";
  const auto n = static_cast<std::uint32_t>(payload.size());
  Bytes frame = {static_cast<std::uint8_t>(n >> 24),
                 static_cast<std::uint8_t>(n >> 16),
                 static_cast<std::uint8_t>(n >> 8),
                 static_cast<std::uint8_t>(n)};
  frame.insert(frame.end(), payload.begin(), payload.begin() + 5);
  ASSERT_EQ(::send(pair.client->native_handle(), frame.data(), frame.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));

  auto r = pair.server->recv(Deadline::after(50ms));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);

  ASSERT_EQ(::send(pair.client->native_handle(), payload.data() + 5,
                   payload.size() - 5, MSG_NOSIGNAL),
            static_cast<ssize_t>(payload.size() - 5));
  auto whole = pair.server->recv(Deadline::after(2s));
  ASSERT_TRUE(whole.is_ok());
  EXPECT_EQ(text_of(whole.value()), payload);
}

TEST(Readiness, InProcConnectionsHaveNoNativeHandle) {
  InProcNetwork net;
  auto listener = net.listen("host:1");
  ASSERT_TRUE(listener.is_ok());
  auto client = net.connect("host:1", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  EXPECT_LT(client.value()->native_handle(), 0);
  EXPECT_LT(listener.value()->native_handle(), 0);

  auto host = EventHost::start({});
  ASSERT_TRUE(host.is_ok());
  EXPECT_FALSE(host.value()->host(1, client.value(), nullptr, nullptr));
}

// ------------------------------------------------------------ EventHost --

TEST(EventHost, ThousandIdleConnectionsBurstActivate) {
  TcpNetwork net;
  auto l = net.listen("0");
  ASSERT_TRUE(l.is_ok());
  ListenerPtr listener = std::move(l).value();

  auto started = EventHost::start({.pollers = 1, .queue_capacity = 8});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();
  ASSERT_EQ(host.poller_count(), 1u);

  constexpr std::size_t kConns = 1000;
  std::atomic<std::size_t> received{0};
  std::vector<ConnectionPtr> clients;
  clients.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    auto c = net.connect(listener->address(), Deadline::after(5s));
    ASSERT_TRUE(c.is_ok());
    auto s = listener->accept(Deadline::after(5s));
    ASSERT_TRUE(s.is_ok());
    ASSERT_TRUE(host.host(
        i + 1, std::move(s).value(),
        [&received](std::uint64_t, Bytes) { ++received; }, nullptr));
    clients.push_back(std::move(c).value());
  }
  ASSERT_EQ(host.hosted_count(), kConns);

  // Idle: the host sits in epoll_wait, no thread per connection.
  std::this_thread::sleep_for(20ms);

  // Burst: every client speaks at once; one poller decodes all of it.
  for (auto& client : clients) {
    ASSERT_TRUE(client->send(bytes_of("hi"), Deadline::after(5s)).is_ok());
  }
  ASSERT_TRUE(wait_until([&] { return received.load() == kConns; }, 20000ms));

  // Broadcast back through the hosted egress path.
  host.publish(common::make_frame(bytes_of("all")),
               OverflowPolicy::kDisconnect);
  for (auto& client : clients) {
    auto got = client->recv(Deadline::after(10s));
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(text_of(got.value()), "all");
  }
  // Delivery accounting trails the last wire write by one lock acquisition,
  // so converge on it rather than asserting the instantaneous value.
  ASSERT_TRUE(wait_until(
      [&] { return host.stats().control_delivered == kConns; }));
  const EventHostStats stats = host.stats();
  EXPECT_EQ(stats.messages_in, kConns);
  EXPECT_EQ(stats.pollers, 1u);
}

TEST(EventHost, DecodesPartialFrameAcrossTwoWakeups) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start({});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::mutex mutex;
  std::vector<std::string> messages;
  ASSERT_TRUE(host.host(1, pair.server,
                        [&](std::uint64_t, Bytes b) {
                          std::scoped_lock lock(mutex);
                          messages.push_back(text_of(b));
                        },
                        nullptr));

  const std::string payload = "two wakeups";
  const auto n = static_cast<std::uint32_t>(payload.size());
  Bytes frame = {static_cast<std::uint8_t>(n >> 24),
                 static_cast<std::uint8_t>(n >> 16),
                 static_cast<std::uint8_t>(n >> 8),
                 static_cast<std::uint8_t>(n)};
  frame.insert(frame.end(), payload.begin(), payload.end());

  // First wakeup sees the header and three payload bytes; the decoder must
  // park mid-message and resume on the second wakeup.
  const int fd = pair.client->native_handle();
  ASSERT_EQ(::send(fd, frame.data(), 7, MSG_NOSIGNAL), 7);
  std::this_thread::sleep_for(50ms);
  {
    std::scoped_lock lock(mutex);
    EXPECT_TRUE(messages.empty());
  }
  ASSERT_EQ(::send(fd, frame.data() + 7, frame.size() - 7, MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size() - 7));
  ASSERT_TRUE(wait_until([&] {
    std::scoped_lock lock(mutex);
    return messages.size() == 1;
  }));
  std::scoped_lock lock(mutex);
  EXPECT_EQ(messages.front(), payload);
}

TEST(EventHost, ResumesAbortedSendTailOnWritability) {
  TcpPair pair;
  pair.connect();
  // A tiny send buffer forces try_send_many to abort mid-message, leaving
  // a tail the poller must flush on later EPOLLOUT wakeups.
  const int small = 8 * 1024;
  ASSERT_EQ(::setsockopt(pair.server->native_handle(), SOL_SOCKET, SO_SNDBUF,
                         &small, sizeof(small)),
            0);

  auto started = EventHost::start({});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();
  ASSERT_TRUE(host.host(7, pair.server, nullptr, nullptr));

  Bytes big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(host.send_to(7, common::make_frame(big),
                           OverflowPolicy::kDropOldest));
  ASSERT_TRUE(host.send_to(7, common::make_frame(bytes_of("done")),
                           OverflowPolicy::kDisconnect));

  // Let the poller wedge on the full socket before the reader starts, so
  // the flush really rides EPOLLOUT resumption.
  std::this_thread::sleep_for(50ms);

  auto first = pair.client->recv(Deadline::after(10s));
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value(), big);
  auto second = pair.client->recv(Deadline::after(10s));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(text_of(second.value()), "done");

  ASSERT_TRUE(wait_until([&] {
    const EventHostStats stats = host.stats();
    return stats.data_delivered == 1 && stats.control_delivered == 1 &&
           stats.queued_frames == 0;
  }));
}

TEST(EventHost, UnhostFromInsideCallback) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start({});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::atomic<int> delivered{0};
  ASSERT_TRUE(host.host(3, pair.server,
                        [&](std::uint64_t id, Bytes) {
                          ++delivered;
                          host.unhost(id);  // close-during-callback
                        },
                        nullptr));

  // Two back-to-back messages: the first callback tears the connection
  // down, so the second must never be delivered.
  ASSERT_TRUE(pair.client->send(bytes_of("one"), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(pair.client->send(bytes_of("two"), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(wait_until([&] { return host.hosted_count() == 0; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(delivered.load(), 1);
}

TEST(EventHost, PeerCloseFiresOnCloseOnce) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start({});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::atomic<int> closes{0};
  std::atomic<int> code{-1};
  ASSERT_TRUE(host.host(4, pair.server, nullptr,
                        [&](std::uint64_t, const Status& cause) {
                          ++closes;
                          code = static_cast<int>(cause.code());
                        }));
  pair.client->close();
  ASSERT_TRUE(wait_until([&] { return closes.load() == 1; }));
  EXPECT_EQ(host.hosted_count(), 0u);
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kClosed));
  EXPECT_EQ(host.stats().disconnects, 1u);
}

TEST(EventHost, ControlOverflowDisconnectsLosslessOrDead) {
  TcpPair pair;
  pair.connect();
  const int small = 4 * 1024;
  ASSERT_EQ(::setsockopt(pair.server->native_handle(), SOL_SOCKET, SO_SNDBUF,
                         &small, sizeof(small)),
            0);
  auto started = EventHost::start({.pollers = 1, .queue_capacity = 2});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::atomic<int> code{-1};
  ASSERT_TRUE(host.host(5, pair.server, nullptr,
                        [&](std::uint64_t, const Status& cause) {
                          code = static_cast<int>(cause.code());
                        }));
  // Wedge the socket with a frame larger than both socket buffers, then
  // outrun the 2-deep queue with control frames: control is never evicted,
  // so the push that finds the queue all-control and full must disconnect.
  auto wedge = common::make_frame(Bytes(256 * 1024));
  ASSERT_TRUE(host.send_to(5, wedge, OverflowPolicy::kDropOldest));
  auto control = common::make_frame(bytes_of("ctl"));
  ASSERT_TRUE(wait_until([&] {
    if (code.load() >= 0) return true;
    host.send_to(5, control, OverflowPolicy::kDisconnect);
    return code.load() >= 0;
  }));
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kResourceExhausted));
  EXPECT_EQ(host.hosted_count(), 0u);
}

TEST(EventHost, ReplaySeedsAreDeliveredFirst) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start({});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::vector<common::OutboundQueue::Item> replay;
  replay.push_back({common::make_frame(bytes_of("schema")),
                    OverflowPolicy::kDisconnect, nullptr});
  ASSERT_TRUE(host.host(6, pair.server, nullptr, nullptr, std::move(replay)));
  host.publish(common::make_frame(bytes_of("sample")),
               OverflowPolicy::kDropOldest);

  auto first = pair.client->recv(Deadline::after(2s));
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(text_of(first.value()), "schema");
  auto second = pair.client->recv(Deadline::after(2s));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(text_of(second.value()), "sample");
}

// ----------------------------------------------------------- AcceptPump --

TEST(AcceptPump, ThreadModePumpsUntilListenerCloses) {
  InProcNetwork net;
  auto l = net.listen("svc:1");
  ASSERT_TRUE(l.is_ok());
  ListenerPtr listener = std::move(l).value();

  std::atomic<std::size_t> conns{0};
  AcceptPump pump(*listener, [&](ConnectionPtr) { ++conns; },
                  {.accept_slice = 10ms});
  EXPECT_FALSE(pump.event_driven());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net.connect("svc:1", Deadline::after(1s)).is_ok());
  }
  ASSERT_TRUE(wait_until([&] { return conns.load() == 3; }));
  EXPECT_EQ(pump.accepted(), 3u);
  listener->close();
  pump.stop();
}

TEST(AcceptPump, EventDrivenAcceptsWithoutAThread) {
  TcpNetwork net;
  auto l = net.listen("0");
  ASSERT_TRUE(l.is_ok());
  ListenerPtr listener = std::move(l).value();
  auto started = EventHost::start({});
  ASSERT_TRUE(started.is_ok());

  std::atomic<std::size_t> conns{0};
  AcceptPump pump(*started.value(), *listener,
                  [&](ConnectionPtr) { ++conns; });
  EXPECT_TRUE(pump.event_driven());

  std::vector<ConnectionPtr> clients;
  for (int i = 0; i < 5; ++i) {
    auto c = net.connect(listener->address(), Deadline::after(2s));
    ASSERT_TRUE(c.is_ok());
    clients.push_back(std::move(c).value());
  }
  ASSERT_TRUE(wait_until([&] { return conns.load() == 5; }));
  EXPECT_EQ(started.value()->stats().accepts, 5u);
}

TEST(AcceptPump, MaxConnsRefusesUntilRetired) {
  InProcNetwork net;
  auto l = net.listen("svc:2");
  ASSERT_TRUE(l.is_ok());
  ListenerPtr listener = std::move(l).value();

  std::atomic<std::size_t> conns{0};
  AcceptPump pump(*listener, [&](ConnectionPtr) { ++conns; },
                  {.accept_slice = 10ms, .max_conns = 1});
  ASSERT_TRUE(net.connect("svc:2", Deadline::after(1s)).is_ok());
  ASSERT_TRUE(wait_until([&] { return conns.load() == 1; }));
  // Second arrival is over the cap: accepted off the backlog but closed.
  ASSERT_TRUE(net.connect("svc:2", Deadline::after(1s)).is_ok());
  ASSERT_TRUE(wait_until([&] { return pump.refused() == 1; }));
  EXPECT_EQ(conns.load(), 1u);

  pump.connection_retired();
  ASSERT_TRUE(net.connect("svc:2", Deadline::after(1s)).is_ok());
  ASSERT_TRUE(wait_until([&] { return conns.load() == 2; }));
}

// ------------------------------------------------------- ConnectionHost --

TEST(ConnectionHost, PipelinedRequestsReplyInOrderOverTcp) {
  TcpPair pair;
  pair.connect();
  auto started = ConnectionHost::start({});
  ASSERT_TRUE(started.is_ok());
  ConnectionHost& host = *started.value();
  EXPECT_EQ(host.thread_count(), 1u);  // pollers only, no fallback pump

  ASSERT_TRUE(host.add(
      1, pair.server,
      [&](std::uint64_t id, Bytes b) {
        (void)host.reply(id, bytes_of("re:" + text_of(b)));
      },
      nullptr));
  // Pipelined: all requests on the wire before the first reply is read.
  // Per-connection callbacks are serialized, so replies come back in
  // request order.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pair.client
                    ->send(bytes_of("q" + std::to_string(i)),
                           Deadline::after(1s))
                    .is_ok());
  }
  for (int i = 0; i < 8; ++i) {
    auto got = pair.client->recv(Deadline::after(5s));
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(text_of(got.value()), "re:q" + std::to_string(i));
  }
}

TEST(ConnectionHost, HandleLessConnectionsRideTheFallbackPump) {
  InProcNetwork net;
  auto l = net.listen("ch:rr");
  ASSERT_TRUE(l.is_ok());
  auto client = net.connect("ch:rr", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  auto server = l.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(server.is_ok());

  auto started = ConnectionHost::start({});
  ASSERT_TRUE(started.is_ok());
  ConnectionHost& host = *started.value();
  EXPECT_EQ(host.thread_count(), 1u);

  // Replay seeds must precede live replies on the fallback path too.
  std::vector<common::OutboundQueue::Item> replay;
  replay.push_back({common::make_frame(bytes_of("seed")),
                    OverflowPolicy::kDisconnect, nullptr});
  ASSERT_TRUE(host.add(
      9, std::move(server).value(),
      [&](std::uint64_t id, Bytes b) {
        (void)host.reply(id, bytes_of("re:" + text_of(b)));
      },
      nullptr, std::move(replay)));
  // The shared pump starts lazily with the first handle-less connection —
  // one thread total, regardless of how many are added after.
  EXPECT_EQ(host.thread_count(), 2u);

  auto seed = client.value()->recv(Deadline::after(5s));
  ASSERT_TRUE(seed.is_ok());
  EXPECT_EQ(text_of(seed.value()), "seed");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.value()
                    ->send(bytes_of("q" + std::to_string(i)),
                           Deadline::after(1s))
                    .is_ok());
  }
  for (int i = 0; i < 4; ++i) {
    auto got = client.value()->recv(Deadline::after(5s));
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(text_of(got.value()), "re:q" + std::to_string(i));
  }
  EXPECT_EQ(host.stats().fallback_messages_in, 4u);
}

TEST(ConnectionHost, ReplyOverflowDisconnectsLosslessOrDead) {
  TcpPair pair;
  pair.connect();
  const int small = 4 * 1024;
  ASSERT_EQ(::setsockopt(pair.server->native_handle(), SOL_SOCKET, SO_SNDBUF,
                         &small, sizeof(small)),
            0);
  auto started = ConnectionHost::start({.pollers = 1, .queue_capacity = 2});
  ASSERT_TRUE(started.is_ok());
  ConnectionHost& host = *started.value();

  std::atomic<int> code{-1};
  ASSERT_TRUE(host.add(2, pair.server, nullptr,
                       [&](std::uint64_t, const Status& cause) {
                         code = static_cast<int>(cause.code());
                       }));
  // Wedge the socket, then outrun the 2-deep queue with replies: a reply
  // is control class, so the push that cannot queue it kills the
  // connection instead of dropping it.
  ASSERT_TRUE(host.send_to(2, {common::make_frame(Bytes(256 * 1024)),
                               OverflowPolicy::kDropOldest, nullptr}));
  ASSERT_TRUE(wait_until([&] {
    if (code.load() >= 0) return true;
    (void)host.reply(2, bytes_of("reply"));
    return code.load() >= 0;
  }));
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kResourceExhausted));
  EXPECT_EQ(host.size(), 0u);
}

TEST(ConnectionHost, FallbackControlOverflowDisconnects) {
  InProcNetwork net;
  auto l = net.listen("ch:wedge");
  ASSERT_TRUE(l.is_ok());
  // The client's receive window wedges after ~2 frames and is never
  // drained — the fallback pump's egress must doom the connection when a
  // control frame cannot be queued.
  net::ConnectOptions wedge;
  wedge.recv_capacity_bytes = 4096;
  auto client = net.connect("ch:wedge", Deadline::after(1s), wedge);
  ASSERT_TRUE(client.is_ok());
  auto server = l.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(server.is_ok());

  auto started = ConnectionHost::start({.pollers = 1, .queue_capacity = 2});
  ASSERT_TRUE(started.is_ok());
  ConnectionHost& host = *started.value();
  std::atomic<int> code{-1};
  ASSERT_TRUE(host.add(3, std::move(server).value(), nullptr,
                       [&](std::uint64_t, const Status& cause) {
                         code = static_cast<int>(cause.code());
                       }));
  auto frame = common::make_frame(Bytes(2048));
  ASSERT_TRUE(wait_until([&] {
    if (code.load() >= 0) return true;
    (void)host.send_to(3, {frame, OverflowPolicy::kDisconnect, nullptr});
    return code.load() >= 0;
  }));
  EXPECT_EQ(code.load(), static_cast<int>(StatusCode::kResourceExhausted));
  ASSERT_TRUE(wait_until([&] { return host.size() == 0; }));
  EXPECT_EQ(host.stats().fallback_disconnects, 1u);
}

TEST(ConnectionHost, PeerCloseDuringReplyFiresOnCloseOnce) {
  TcpPair pair;
  pair.connect();
  auto started = ConnectionHost::start({});
  ASSERT_TRUE(started.is_ok());
  ConnectionHost& host = *started.value();

  std::atomic<int> closes{0};
  ASSERT_TRUE(host.add(
      4, pair.server,
      [&](std::uint64_t id, Bytes) {
        // The peer hangs up without reading its reply: the enqueue must
        // not crash or leak, and teardown reports exactly one close.
        (void)host.reply(id, bytes_of(std::string(64 * 1024, 'r')));
      },
      [&](std::uint64_t, const Status&) { ++closes; }));
  ASSERT_TRUE(
      pair.client->send(bytes_of("last request"), Deadline::after(1s)).is_ok());
  pair.client->close();
  ASSERT_TRUE(wait_until([&] { return closes.load() == 1; }));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(closes.load(), 1);
  EXPECT_EQ(host.size(), 0u);
}

TEST(ConnectionHost, StopIsIdempotentAndSilencesCallbacks) {
  TcpPair pair;
  pair.connect();
  InProcNetwork net;
  auto l = net.listen("ch:stop");
  ASSERT_TRUE(l.is_ok());
  auto client = net.connect("ch:stop", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  auto inproc_server = l.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(inproc_server.is_ok());

  auto started = ConnectionHost::start({});
  ASSERT_TRUE(started.is_ok());
  ConnectionHost& host = *started.value();
  std::atomic<int> closes{0};
  const auto on_close = [&](std::uint64_t, const Status&) { ++closes; };
  ASSERT_TRUE(host.add(5, pair.server, nullptr, on_close));
  ASSERT_TRUE(host.add(6, std::move(inproc_server).value(), nullptr,
                       on_close));
  EXPECT_EQ(host.size(), 2u);

  // stop() must quiesce both delivery paths without firing on_close (the
  // service initiated the teardown), and a second stop() is a no-op.
  host.stop();
  host.stop();
  EXPECT_EQ(host.size(), 0u);
  EXPECT_EQ(closes.load(), 0);
  // A connection arriving after stop() is refused, not leaked.
  TcpPair late;
  late.connect();
  EXPECT_FALSE(host.add(7, late.server, nullptr, nullptr));
}

// ------------------------------------------------------------ heartbeat --

TEST(EventHost, HeartbeatDeclaresSilentButOpenPeerDead) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start({.heartbeat_interval = 50ms,
                                   .heartbeat_grace = 100ms,
                                   .ping_frame = bytes_of("ping")});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  // The pathological peer: connected, socket open, never speaks — the
  // shape a one-way partition or wedged process leaves behind, which no
  // amount of epoll readability will ever surface.
  std::atomic<int> closes{0};
  Status cause = Status::ok();
  std::mutex mutex;
  ASSERT_TRUE(host.host(1, pair.server, nullptr,
                        [&](std::uint64_t, const Status& s) {
                          std::scoped_lock lock(mutex);
                          cause = s;
                          ++closes;
                        }));

  // The host probes first (the peer gets a chance to pong)...
  auto probe = pair.client->recv(Deadline::after(2s));
  ASSERT_TRUE(probe.is_ok());
  EXPECT_EQ(text_of(probe.value()), "ping");

  // ...then declares it dead within interval + grace, through the normal
  // on_close path, exactly once.
  ASSERT_TRUE(wait_until([&] { return closes.load() == 1; }, 2000ms));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(closes.load(), 1);
  {
    std::scoped_lock lock(mutex);
    EXPECT_EQ(cause.code(), StatusCode::kTimeout);
  }
  EXPECT_EQ(host.hosted_count(), 0u);
  const EventHostStats stats = host.stats();
  EXPECT_GE(stats.pings_sent, 1u);
  EXPECT_EQ(stats.idle_disconnects, 1u);
}

TEST(EventHost, HeartbeatSparesAPeerThatKeepsTalking) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start({.heartbeat_interval = 40ms,
                                   .heartbeat_grace = 40ms,
                                   .ping_frame = bytes_of("ping")});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::atomic<int> closes{0};
  ASSERT_TRUE(host.host(1, pair.server, nullptr,
                        [&](std::uint64_t, const Status&) { ++closes; }));

  // Any inbound frame counts as a pong; a peer chatting at half the
  // interval must ride out many interval + grace windows untouched.
  const auto end = common::Clock::now() + 400ms;
  while (common::Clock::now() < end) {
    ASSERT_TRUE(
        pair.client->send(bytes_of("alive"), Deadline::after(1s)).is_ok());
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(closes.load(), 0);
  EXPECT_EQ(host.hosted_count(), 1u);
  EXPECT_EQ(host.stats().idle_disconnects, 0u);
}

TEST(EventHost, EmptyPingFrameIsAPureIdleTimer) {
  TcpPair pair;
  pair.connect();
  auto started = EventHost::start(
      {.heartbeat_interval = 40ms, .heartbeat_grace = 40ms});
  ASSERT_TRUE(started.is_ok());
  EventHost& host = *started.value();

  std::atomic<int> closes{0};
  ASSERT_TRUE(host.host(1, pair.server, nullptr,
                        [&](std::uint64_t, const Status&) { ++closes; }));

  // No probe ever goes out, but the silent peer is still reaped.
  auto nothing = pair.client->recv(Deadline::after(30ms));
  EXPECT_EQ(nothing.status().code(), StatusCode::kTimeout);
  ASSERT_TRUE(wait_until([&] { return closes.load() == 1; }, 2000ms));
  const EventHostStats stats = host.stats();
  EXPECT_EQ(stats.pings_sent, 0u);
  EXPECT_EQ(stats.idle_disconnects, 1u);
}

}  // namespace
}  // namespace cs::net
