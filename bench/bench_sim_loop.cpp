// E3 — the simulation feedback loop (paper section 4.4).
//
// Claim: "people can tolerate delays of up to a minute while waiting for
// new simulation results. This tolerance can even be increased if
// intermediate results like from an iterative solver are displayed
// in-between."
//
// Measured on the LBM demo scenario: after steering the miscibility, (a)
// the delay until the *first intermediate sample* reflects the change
// versus (b) the delay until the run reaches a converged structure. The
// gap between the two is the value of intermediate-result display.
#include <benchmark/benchmark.h>

#include "sim/lbm/lbm.hpp"

namespace {

/// Time-to-first-intermediate-sample: one simulation step + sample
/// extraction — what a user sees almost immediately after steering.
void BM_FirstIntermediateResult(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cs::lbm::LbmConfig config;
  config.nx = config.ny = config.nz = n;
  config.coupling = 0.0;
  cs::lbm::TwoFluidLbm sim(config);
  for (int s = 0; s < 20; ++s) sim.step();  // settle

  for (auto _ : state) {
    sim.set_coupling(1.8);  // the steering action
    sim.step();             // first step with the new physics
    auto sample = sim.order_parameter();  // the intermediate result
    benchmark::DoNotOptimize(sample.data());
    sim.set_coupling(0.0);
  }
  state.SetLabel("grid=" + std::to_string(n));
}

/// Time-to-converged-result: steps until segregation crosses 0.35 —
/// the "new simulation result" a user would otherwise wait for.
void BM_ConvergedResult(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cs::lbm::LbmConfig config;
    config.nx = config.ny = config.nz = n;
    config.coupling = 0.0;
    config.seed = 7;
    cs::lbm::TwoFluidLbm sim(config);
    for (int s = 0; s < 20; ++s) sim.step();
    sim.set_coupling(1.8);
    int steps = 0;
    while (sim.segregation() < 0.35 && steps < 5000) {
      sim.step();
      ++steps;
    }
    state.counters["steps_to_converge"] = static_cast<double>(steps);
    benchmark::DoNotOptimize(sim.segregation());
  }
  state.SetLabel("grid=" + std::to_string(n));
}

/// Raw step throughput, for translating steps into wall-clock budgets.
void BM_LbmStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cs::lbm::LbmConfig config;
  config.nx = config.ny = config.nz = n;
  config.coupling = 1.5;
  cs::lbm::TwoFluidLbm sim(config);
  for (auto _ : state) {
    sim.step();
  }
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * sim.grid().cells(),
      benchmark::Counter::kIsRate);
  state.SetLabel("grid=" + std::to_string(n));
}

}  // namespace

BENCHMARK(BM_FirstIntermediateResult)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond)->MinTime(0.3);
BENCHMARK(BM_ConvergedResult)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_LbmStep)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond)->MinTime(0.3);

BENCHMARK_MAIN();
