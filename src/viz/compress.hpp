// Frame codecs for remote rendering.
//
// OpenGL VizServer's bandwidth argument (paper section 2.4: "this greatly
// reduces network traffic since only compressed bitmaps need to be sent")
// rests on two properties modelled here: run-length coding exploits the
// large flat regions of scientific renderings, and inter-frame deltas
// exploit the small camera/scene motion between consecutive frames.
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "viz/image.hpp"

namespace cs::viz {

/// RLE-compresses a frame (key frame).
common::Bytes compress_frame(const Image& frame);

/// Decodes a compress_frame() buffer.
common::Result<Image> decompress_frame(common::ByteSpan data);

/// Compresses `frame` as a delta against `previous` (same dimensions):
/// XOR then RLE — unchanged regions become long zero runs. Falls back to a
/// key frame when dimensions differ.
common::Bytes compress_frame_delta(const Image& frame, const Image& previous);

/// Decodes either a key or a delta buffer (`previous` supplies the base
/// for deltas).
common::Result<Image> decompress_frame_delta(common::ByteSpan data,
                                             const Image& previous);

}  // namespace cs::viz
