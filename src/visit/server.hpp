// Visualization-side steering server.
//
// "The visualization acts as a server that dispatches the simulation's
// requests — unlike many other steering toolkits that work the opposite
// way." (paper section 3.2). The server owns a table of current steering
// parameter values; when the simulation asks for a parameter the session
// answers from that table immediately, so the simulation's request/reply
// round trip is bounded by the link, never by the visualization's render
// loop. Incoming sample data is handed to the application as events, with
// all byte-order/precision conversion done here on the server.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"
#include "wire/convert.hpp"
#include "wire/message.hpp"
#include "wire/structdesc.hpp"

namespace cs::visit {

/// One connected simulation, as seen by the visualization.
class SimSession {
 public:
  struct Event {
    enum class Kind {
      kData,        ///< scalar/string sample data under `tag`
      kStructData,  ///< record array; schema() gives the sender layout
      kBye,         ///< simulation disconnected cleanly
    };
    Kind kind = Kind::kData;
    std::uint32_t tag = 0;
    wire::Message message;
  };

  explicit SimSession(net::ConnectionPtr conn) : conn_(std::move(conn)) {}

  /// Pumps the connection until an application event arrives or the
  /// deadline expires. Parameter requests from the simulation are answered
  /// internally and never surface here.
  common::Result<Event> serve(common::Deadline deadline);

  /// Publishes the current value of steering parameter `tag`. The next
  /// request for it gets this value. Thread-safe (a UI thread may steer
  /// while serve() runs).
  template <typename T>
  void set_parameter(std::uint32_t tag, const std::vector<T>& values) {
    store_parameter(tag,
                    wire::make_data_message(tag, values.data(), values.size()));
  }

  /// String-valued variant of set_parameter().
  void set_parameter_string(std::uint32_t tag, std::string_view text) {
    store_parameter(tag, wire::make_string_message(tag, text));
  }

  /// Number of parameter requests served so far (steering traffic metric).
  std::uint64_t requests_served() const noexcept;

  /// Sender-side schema announced for `tag`, if any.
  const wire::StructDesc* schema(std::uint32_t tag) const;

  /// Record count of a kStructData event payload.
  common::Result<std::size_t> record_count(const Event& event) const;

  /// Unpacks a kStructData event into the receiver's own record layout.
  common::Status unpack(const Event& event, const wire::StructDesc& dst_desc,
                        void* records, std::size_t record_count) const;

  /// Extracts scalar data of a kData event with conversion.
  template <typename T>
  common::Result<std::vector<T>> extract(const Event& event) const {
    return wire::extract_as<T>(event.message);
  }

  /// Closes the connection; pending serve() calls wake with kClosed.
  void close();
  bool is_open() const { return conn_ && conn_->is_open(); }
  /// Traffic counters of the underlying connection (zeros when detached).
  net::ConnStats stats() const {
    return conn_ ? conn_->stats() : net::ConnStats{};
  }

 private:
  void store_parameter(std::uint32_t tag, wire::Message m);

  /// Mutex-guarded shared state lives behind a pointer so a SimSession can
  /// be moved (e.g. returned through Result).
  struct State {
    mutable std::mutex mutex;  // guards everything below
    std::map<std::uint32_t, wire::Message> parameters;
    std::map<std::uint32_t, wire::StructDesc> schemas;
    std::uint64_t served = 0;
  };

  net::ConnectionPtr conn_;
  std::unique_ptr<State> state_ = std::make_unique<State>();
};

/// Accepts simulations and performs the password handshake.
class VizServer {
 public:
  struct Options {
    std::string address;   ///< address the simulation connects to
    std::string password;  ///< expected VISIT handshake password
  };

  /// Binds the listener.
  static common::Result<VizServer> listen(net::Network& net,
                                          const Options& options);

  /// Waits for the next simulation; rejects wrong passwords with DENY and
  /// keeps listening (the caller sees kPermissionDenied for that attempt).
  common::Result<SimSession> accept(common::Deadline deadline);

  void close();
  const std::string& address() const { return options_.address; }

 private:
  net::ListenerPtr listener_;
  Options options_;
};

/// Validates "HELLO <version> <password>" on an accepted connection and
/// replies OK/DENY. Exposed for reuse by the multiplexer and the proxies.
common::Status handshake_accept(net::Connection& conn,
                                const std::string& password,
                                common::Deadline deadline,
                                const std::string& ok_role = "master");

}  // namespace cs::visit
