#include "viz/image.hpp"

#include <cstdio>

namespace cs::viz {

common::Status Image::write_ppm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::Status{common::StatusCode::kInternal,
                          "cannot open " + path};
  }
  std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
  for (const auto& p : pixels_) {
    const std::uint8_t rgb[3] = {p.r, p.g, p.b};
    std::fwrite(rgb, 1, 3, f);
  }
  std::fclose(f);
  return common::Status::ok();
}

}  // namespace cs::viz
