#include "visit/server.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Status handshake_accept(net::Connection& conn, const std::string& password,
                        Deadline deadline, const std::string& ok_role) {
  auto raw = conn.recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto hello = wire::Message::decode(raw.value());
  if (!hello.is_ok()) return hello.status();
  if (hello.value().header.tag != kTagHello) {
    return Status{StatusCode::kProtocolError, "expected HELLO"};
  }
  auto body = wire::extract_string(hello.value());
  if (!body.is_ok()) return body.status();
  const auto parts = common::split(body.value(), ' ');
  const bool version_ok = parts.size() >= 2 && parts[0] == "HELLO" &&
                          parts[1] == kProtocolVersion;
  const std::string offered = parts.size() >= 3 ? parts[2] : "";
  if (!version_ok || offered != password) {
    const char* why = version_ok ? "DENY bad password" : "DENY bad version";
    (void)conn.send(wire::make_control_message(kTagHelloAck, why).encode(),
                    deadline);
    conn.close();
    return Status{StatusCode::kPermissionDenied, why};
  }
  return conn.send(
      wire::make_control_message(kTagHelloAck, "OK " + ok_role).encode(),
      deadline);
}

Result<SimSession::Event> SimSession::serve(Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "session closed"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto decoded = wire::Message::decode(raw.value());
    if (!decoded.is_ok()) return decoded.status();
    wire::Message m = std::move(decoded).value();

    switch (m.header.kind) {
      case wire::MessageKind::kRequest: {
        // Answer from the parameter table; an unset parameter yields an
        // empty data message so the simulation's round trip still completes.
        wire::Message reply;
        {
          std::scoped_lock lock(state_->mutex);
          auto it = state_->parameters.find(m.header.tag);
          reply = (it != state_->parameters.end())
                      ? it->second
                      : wire::make_data_message<std::uint8_t>(m.header.tag,
                                                              nullptr, 0);
          ++state_->served;
        }
        if (Status s = conn_->send(reply.encode(), deadline); !s.is_ok()) {
          return s;
        }
        continue;
      }
      case wire::MessageKind::kControl: {
        if (m.header.tag == kTagBye) {
          Event e;
          e.kind = Event::Kind::kBye;
          e.tag = kTagBye;
          close();
          return e;
        }
        if (m.header.tag == kTagSchema) {
          auto body = wire::extract_string(m);
          if (!body.is_ok()) return body.status();
          const auto space = body.value().find(' ');
          if (space == std::string::npos) {
            return Status{StatusCode::kProtocolError, "bad schema message"};
          }
          const auto tag = static_cast<std::uint32_t>(
              std::strtoul(body.value().c_str(), nullptr, 10));
          auto desc = wire::StructDesc::parse(
              std::string_view{body.value()}.substr(space + 1));
          if (!desc.is_ok()) return desc.status();
          std::scoped_lock lock(state_->mutex);
          state_->schemas.insert_or_assign(tag, std::move(desc).value());
          continue;
        }
        if (m.header.tag == kTagPing) continue;
        CS_LOG_WARN("visit.server")
            << "unexpected control tag " << m.header.tag;
        continue;
      }
      case wire::MessageKind::kData: {
        Event e;
        e.tag = m.header.tag;
        {
          std::scoped_lock lock(state_->mutex);
          e.kind = state_->schemas.contains(m.header.tag) ? Event::Kind::kStructData
                                                   : Event::Kind::kData;
        }
        e.message = std::move(m);
        return e;
      }
    }
  }
}

std::uint64_t SimSession::requests_served() const noexcept {
  std::scoped_lock lock(state_->mutex);
  return state_->served;
}

const wire::StructDesc* SimSession::schema(std::uint32_t tag) const {
  std::scoped_lock lock(state_->mutex);
  auto it = state_->schemas.find(tag);
  return it == state_->schemas.end() ? nullptr : &it->second;
}

Result<std::size_t> SimSession::record_count(const Event& event) const {
  std::scoped_lock lock(state_->mutex);
  auto it = state_->schemas.find(event.tag);
  if (it == state_->schemas.end()) {
    return Status{StatusCode::kNotFound, "no schema for tag"};
  }
  const std::size_t rec = it->second.wire_record_size();
  if (rec == 0 || event.message.payload.size() % rec != 0) {
    return Status{StatusCode::kProtocolError, "payload not a record multiple"};
  }
  return event.message.payload.size() / rec;
}

Status SimSession::unpack(const Event& event, const wire::StructDesc& dst_desc,
                          void* records, std::size_t record_count) const {
  wire::StructDesc src;
  {
    std::scoped_lock lock(state_->mutex);
    auto it = state_->schemas.find(event.tag);
    if (it == state_->schemas.end()) {
      return Status{StatusCode::kNotFound, "no schema for tag"};
    }
    src = it->second;
  }
  return wire::unpack_records(src, event.message.header.payload_order,
                              event.message.payload, dst_desc, records,
                              record_count);
}

void SimSession::close() {
  if (conn_) conn_->close();
}

void SimSession::store_parameter(std::uint32_t tag, wire::Message m) {
  std::scoped_lock lock(state_->mutex);
  state_->parameters.insert_or_assign(tag, std::move(m));
}

Result<VizServer> VizServer::listen(net::Network& net,
                                    const Options& options) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  VizServer server;
  server.listener_ = std::move(listener).value();
  server.options_ = options;
  return server;
}

Result<SimSession> VizServer::accept(Deadline deadline) {
  if (!listener_) return Status{StatusCode::kClosed, "server closed"};
  auto conn = listener_->accept(deadline);
  if (!conn.is_ok()) return conn.status();
  if (Status s = handshake_accept(*conn.value(), options_.password, deadline);
      !s.is_ok()) {
    return s;
  }
  return SimSession{std::move(conn).value()};
}

void VizServer::close() {
  if (listener_) listener_->close();
}

}  // namespace cs::visit
