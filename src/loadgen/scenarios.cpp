#include "loadgen/scenarios.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "ag/desktop.hpp"
#include "ag/media.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "loadgen/controller.hpp"
#include "loadgen/driver.hpp"
#include "net/fault.hpp"
#include "net/inproc.hpp"
#include "net/reconnect.hpp"
#include "net/tcp.hpp"
#include "obs/endpoint.hpp"
#include "obs/registry.hpp"
#include "unicore/gateway.hpp"
#include "visit/client.hpp"
#include "visit/control.hpp"
#include "visit/multiplexer.hpp"
#include "visit/viewer.hpp"
#include "viz/remote.hpp"

namespace cs::loadgen {

using common::ByteOrder;
using common::Bytes;
using common::Deadline;
using common::Histogram;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

constexpr auto kPollSlice = std::chrono::milliseconds(20);
constexpr std::uint32_t kSampleTag = 1;
constexpr std::uint32_t kSteerTag = 2;

/// One scenario participant's outcome; merged into the Report afterwards.
struct Participant {
  ConnectionReport report;
  Histogram latency;
};

Status invalid(const char* what) {
  return Status{StatusCode::kInvalidArgument, what};
}

Status check(const ScenarioOptions& options) {
  if (options.connections == 0) return invalid("connections must be >= 1");
  if (options.duration <= common::Duration::zero()) {
    return invalid("duration must be positive");
  }
  if (options.rate_per_sec <= 0.0) return invalid("rate must be positive");
  if (options.stalled_connections >= options.connections) {
    return invalid("stalled connections must leave at least one healthy");
  }
  return Status::ok();
}

common::Duration rate_interval(double per_sec) {
  return std::chrono::duration_cast<common::Duration>(
      std::chrono::duration<double>(1.0 / per_sec));
}

/// One viewer's drain loop until `end`: account timestamped samples into
/// the latency histogram, steer periodically while holding the master role.
/// Shared verbatim by the in-process soak and the distributed viewer fleet
/// (MuxViewerRunner) — the scenario IS the worker-executable spec.
void drain_viewer(visit::ViewerClient& viewer, common::TimePoint end,
                  Participant& out) {
  std::uint64_t polls = 0;
  while (common::Clock::now() < end) {
    auto event = viewer.poll(Deadline::after(kPollSlice));
    if (!event.is_ok()) {
      if (event.status().code() == StatusCode::kClosed) break;
      continue;  // poll slice elapsed without a sample
    }
    if (event.value().kind == visit::ViewerClient::Event::Kind::kBye) break;
    if (event.value().kind == visit::ViewerClient::Event::Kind::kData &&
        event.value().tag == kSampleTag &&
        event.value().message.payload.size() >= 8) {
      out.latency.record(common::ns_since(common::read_uint<std::uint64_t>(
          event.value().message.payload, ByteOrder::kBig)));
      ++out.report.ops;
    }
    // The master periodically publishes a steering update — the
    // "1 master + many passive viewers" collaboration shape.
    if (viewer.is_master() && ++polls % 32 == 0) {
      if (!viewer.steer_string(kSteerTag, "step=" + std::to_string(polls))
               .is_ok()) {
        ++out.report.errors;
      }
    }
  }
  out.report.transport = viewer.stats();
  viewer.disconnect();
}

/// Outcome of one simulation-driver run (the producer side of a mux soak).
struct SimDrive {
  std::uint64_t sent = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t scrapes_ok = 0;
  std::vector<std::pair<std::string, double>> scraped;
};

/// The simulation: timestamped samples at a fixed rate, a parameter pull
/// every 32 samples to exercise the request/reply path, and one mid-run
/// /metricsz scrape (when `metricsz_address` is nonempty) so the report
/// carries server-side truth captured under load.
SimDrive drive_sim(net::Network& net, visit::SimClient& sim,
                   const std::string& metricsz_address,
                   const ScenarioOptions& options, common::TimePoint t_start,
                   common::TimePoint end) {
  SimDrive drive;
  const auto interval = rate_interval(options.rate_per_sec);
  auto next_send = t_start;
  const auto scrape_at = t_start + options.duration / 2;
  Bytes payload(std::max<std::size_t>(options.payload_bytes, 8));
  common::Rng rng(options.seed);
  while (common::Clock::now() < end) {
    std::this_thread::sleep_until(std::min(next_send, end));
    if (common::Clock::now() >= end) break;
    if (drive.scrapes_ok == 0 && !metricsz_address.empty() &&
        common::Clock::now() >= scrape_at) {
      auto mid = obs::scrape_metrics(net, metricsz_address,
                                     Deadline::after(std::chrono::seconds(2)));
      if (mid.is_ok()) {
        drive.scraped = std::move(mid).value();
        ++drive.scrapes_ok;
      }
    }
    next_send += interval;
    payload.assign(payload.size(), static_cast<std::uint8_t>(rng.next_u64()));
    Bytes stamped;
    common::append_uint<std::uint64_t>(stamped, common::steady_now_ns(),
                                       ByteOrder::kBig);
    std::copy(stamped.begin(), stamped.end(), payload.begin());
    const Status s =
        sim.send(kSampleTag, payload.data(), payload.size(),
                 Deadline::after(std::chrono::seconds(1)));
    if (!s.is_ok()) {
      if (s.code() == StatusCode::kClosed) break;
      ++drive.timeouts;
      continue;
    }
    ++drive.sent;
    if (drive.sent % 32 == 0) {
      (void)sim.request_string(kSteerTag,
                               Deadline::after(std::chrono::seconds(1)));
    }
  }
  sim.disconnect();
  return drive;
}

}  // namespace

// ---------------------------------------------------------------------------
// Steering fan-out soak (visit::Multiplexer)
// ---------------------------------------------------------------------------

Result<Report> run_multiplexer_soak(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  const bool tcp = options.transport == ScenarioOptions::Transport::kTcp;
  std::unique_ptr<net::Network> net;
  if (tcp) {
    net = std::make_unique<net::TcpNetwork>();
  } else {
    net = std::make_unique<net::InProcNetwork>();
  }
  // Process-global TCP wire counters would otherwise accumulate across
  // scenarios run in one process (tests, sweeps).
  net::reset_tcp_wire_stats();
  visit::Multiplexer::Options mux_options;
  mux_options.sim_address = tcp ? "0" : "mux:sim";
  mux_options.viewer_address = tcp ? "0" : "mux:viewer";
  mux_options.password = "soak";
  mux_options.fanout_shards = options.fanout_shards;
  mux_options.use_event_host = options.use_event_host;
  if (options.scrape_metricsz) {
    mux_options.metricsz_address = tcp ? "0" : "mux:metricsz";
  }
  auto mux = visit::Multiplexer::start(*net, mux_options);
  if (!mux.is_ok()) return mux.status();

  // Connect every viewer before the first sample so the whole fleet sees
  // the full fan-out; the first one in holds the master role.
  visit::ViewerClient::Options viewer_options;
  viewer_options.mux_address = mux.value()->viewer_address();
  viewer_options.password = mux_options.password;
  std::vector<visit::ViewerClient> viewers;
  viewers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    auto viewer = visit::ViewerClient::connect(
        *net, viewer_options, Deadline::after(std::chrono::seconds(5)));
    if (!viewer.is_ok()) return viewer.status();
    viewers.push_back(std::move(viewer).value());
  }

  visit::SimClientOptions sim_options;
  sim_options.server_address = mux.value()->sim_address();
  sim_options.password = mux_options.password;
  auto sim = visit::SimClient::connect(
      *net, sim_options, Deadline::after(std::chrono::seconds(5)));
  if (!sim.is_ok()) return sim.status();

  // A viewer's connect() returns when its handshake completes, but the
  // server hands the socket to the event host asynchronously — give the
  // last registrations a moment to land before reading the peak shape.
  if (tcp && options.use_event_host) {
    const auto hosted_deadline = Deadline::after(std::chrono::seconds(5));
    while (mux.value()->stats().event_host.hosted < options.connections &&
           !hosted_deadline.has_expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Thread-count assertion: with the full fleet connected, the service
  // must stay within the bound. Measured here — before traffic — because
  // this is the moment the viewer population peaks.
  const auto connected_stats = mux.value()->stats();
  if (options.max_service_threads != 0 &&
      connected_stats.service_threads > options.max_service_threads) {
    return Status{StatusCode::kInternal,
                  "service owns " +
                      std::to_string(connected_stats.service_threads) +
                      " threads with " + std::to_string(options.connections) +
                      " viewers connected; bound is " +
                      std::to_string(options.max_service_threads)};
  }

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  std::vector<Participant> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&viewers, &outcomes, end, i] {
      drain_viewer(viewers[i], end, outcomes[i]);
    });
  }

  // The mid-run /metricsz scrape inside drive_sim is taken while the fleet
  // is connected and samples are flowing, so gauges (hosted_viewers) and
  // stage histograms show the service under load — the server-side truth
  // the report carries.
  const SimDrive drive = drive_sim(*net, sim.value(),
                                   mux.value()->metricsz_address(), options,
                                   t_start, end);
  for (auto& w : workers) w.join();
  mux.value()->stop();

  Report report;
  report.name = "mux_soak";
  report.connections = options.connections;
  report.elapsed = common::Clock::now() - t_start;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  report.timeouts += drive.timeouts;
  // Every registered roll-up key is emitted explicitly — zero means
  // "measured, and it was zero", never "not measured" — so CI can assert on
  // absence vs. value. Peak-population shape comes from connected_stats
  // (the moment the viewer fleet was largest); everything else is
  // overwritten by the mid-run scrape when one succeeded.
  report.service_metrics = {
      {"service_threads",
       static_cast<double>(connected_stats.service_threads)},
      {"hosted_viewers",
       static_cast<double>(connected_stats.event_host.hosted)},
      {"event_host_pollers",
       static_cast<double>(connected_stats.event_host.pollers)},
      {"frames_published", 0.0},
      {"frames_delivered", 0.0},
      {"queue_drops", 0.0},
      {"queue_depth_high_water", 0.0},
      {"overflow_disconnects", 0.0},
      {"poller_wakeups", 0.0},
      {"metricsz_scrapes", static_cast<double>(drive.scrapes_ok)},
  };
  for (const auto& [key, value] : drive.scraped) {
    // hosted_viewers/service_threads stay peak-population; the scrape's
    // other rows (counters, stage histogram expansions) are server truth.
    if (key == "service_threads" || key == "hosted_viewers" ||
        key == "event_host_pollers") {
      continue;
    }
    auto it = std::find_if(
        report.service_metrics.begin(), report.service_metrics.end(),
        [&key = key](const auto& pair) { return pair.first == key; });
    if (it != report.service_metrics.end()) {
      it->second = value;
    } else {
      report.service_metrics.emplace_back(key, value);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Remote-rendering viewpoint/frame loop (viz::RemoteRenderServer)
// ---------------------------------------------------------------------------

Result<Report> run_vizserver_loop(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  net::InProcNetwork net;
  auto scene = std::make_shared<viz::SceneStore>();
  scene->set_boxes({{{-1, -1, -1}, {1, 1, 1}}}, {90, 90, 90});
  viz::RemoteRenderServer::Options server_options;
  server_options.address = "viz:render";
  server_options.width = 160;
  server_options.height = 120;
  server_options.frame_period = std::chrono::milliseconds(1);
  server_options.pipeline_shards = options.fanout_shards;
  const auto t_server = common::Clock::now();
  auto server = viz::RemoteRenderServer::start(net, scene, server_options);
  if (!server.is_ok()) return server.status();

  // The first `stalled_connections` participants are deliberately wedged:
  // a tiny receive window that fills after a frame or two, never drained.
  // They exist to measure how well the service isolates its healthy
  // participants from a blocked one.
  const std::size_t stalled = options.stalled_connections;
  std::vector<viz::RemoteRenderClient> clients;
  clients.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    if (i < stalled) {
      net::ConnectOptions wedge;
      wedge.recv_capacity_bytes = 4096;
      auto conn = net.connect(server_options.address,
                              Deadline::after(std::chrono::seconds(5)), wedge);
      if (!conn.is_ok()) return conn.status();
      clients.push_back(viz::RemoteRenderClient::adopt(std::move(conn).value()));
      continue;
    }
    auto client = viz::RemoteRenderClient::connect(
        net, server_options.address, Deadline::after(std::chrono::seconds(5)));
    if (!client.is_ok()) return client.status();
    clients.push_back(std::move(client).value());
  }

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  // The camera is shared (VizServer collaboration), so the view-update rate
  // is split across the healthy participants; every update re-renders for
  // everyone.
  const auto view_interval = rate_interval(
      options.rate_per_sec /
      static_cast<double>(options.connections - stalled));
  std::vector<Participant> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&, i] {
      auto& client = clients[i];
      auto& out = outcomes[i];
      if (i < stalled) {
        // Wedged consumer: hold the connection open, drain nothing.
        std::this_thread::sleep_until(end);
        out.report.transport = client.stats();
        client.disconnect();
        return;
      }
      common::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
      viz::Camera camera;
      auto next_view = t_start + view_interval * i / options.connections;
      common::TimePoint view_sent{};
      bool awaiting_view = false;
      while (common::Clock::now() < end) {
        if (common::Clock::now() >= next_view) {
          next_view += view_interval;
          camera.orbit(rng.uniform(-0.2, 0.2), rng.uniform(-0.1, 0.1));
          if (client
                  .set_view(camera, Deadline::after(std::chrono::seconds(1)))
                  .code() == StatusCode::kClosed) {
            break;
          }
          view_sent = common::Clock::now();
          awaiting_view = true;
        }
        // Drain frames continuously — the shared camera means frames arrive
        // for everyone's view changes, not just our own.
        auto frame = client.await_frame(Deadline::after(kPollSlice));
        if (!frame.is_ok()) {
          if (frame.status().code() == StatusCode::kClosed) break;
          continue;
        }
        ++out.report.ops;
        if (awaiting_view) {
          out.latency.record(common::Clock::now() - view_sent);
          awaiting_view = false;
        }
      }
      out.report.transport = client.stats();
      client.disconnect();
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  server.value()->stop();
  const auto server_stats = server.value()->stats();

  // No-spin assertion. Every render-loop iteration either renders a frame
  // or sleeps a full frame period, so the wakeup count is bounded by
  // elapsed/frame_period + frames_rendered (plus startup/teardown slack).
  // The historical bug this guards against — polling accept with an
  // expired deadline each pass — blows through this bound by orders of
  // magnitude the moment a stalled client keeps the loop awake.
  const double total_run =
      std::chrono::duration<double>(common::Clock::now() - t_server).count();
  const double period =
      std::chrono::duration<double>(server_options.frame_period).count();
  const double wakeup_budget =
      total_run / period + static_cast<double>(server_stats.frames_rendered) +
      256.0;
  if (static_cast<double>(server_stats.render_loop_iterations) >
      wakeup_budget) {
    return Status{StatusCode::kInternal,
                  "render loop spun: " +
                      std::to_string(server_stats.render_loop_iterations) +
                      " wakeups against a budget of " +
                      std::to_string(static_cast<std::uint64_t>(
                          wakeup_budget))};
  }

  Report report;
  report.name = "viz_loop";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  std::size_t viz_high_water = 0;
  for (const auto& shard : server_stats.fanout.shards) {
    viz_high_water = std::max(viz_high_water, shard.queue_high_water);
  }
  report.service_metrics = {
      {"render_loop_iterations",
       static_cast<double>(server_stats.render_loop_iterations)},
      {"render_loop_wakeup_budget", wakeup_budget},
      {"frames_rendered", static_cast<double>(server_stats.frames_rendered)},
      // Explicit even when zero: "no drops" must be distinguishable from
      // "not measured".
      {"frames_delivered",
       static_cast<double>(server_stats.fanout.data_delivered)},
      {"queue_drops", static_cast<double>(server_stats.fanout.data_dropped)},
      {"queue_depth_high_water", static_cast<double>(viz_high_water)},
      {"overflow_disconnects",
       static_cast<double>(server_stats.fanout.disconnects)},
  };
  return report;
}

// ---------------------------------------------------------------------------
// Media-bridge stream (ag::MediaStream + ag::UnicastBridge)
// ---------------------------------------------------------------------------

namespace {

/// Frame dimensions approximating `payload_bytes` of raw RGB.
std::pair<int, int> frame_dims(std::size_t payload_bytes) {
  const int width = 32;
  const auto rows = payload_bytes / (3u * width);
  const int height = std::clamp<int>(static_cast<int>(rows), 4, 256);
  return {width, height};
}

/// Encodes `ns` into the first three pixels; the RLE codec is lossless, so
/// the stamp survives compress -> bridge -> decompress.
void stamp_frame(viz::Image& frame, std::uint64_t ns) {
  std::uint8_t bytes[9] = {};
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(ns >> (8 * (7 - i)));
  }
  auto& px = frame.pixels();
  for (int p = 0; p < 3; ++p) {
    px[p] = viz::Color{bytes[3 * p], bytes[3 * p + 1], bytes[3 * p + 2]};
  }
}

std::uint64_t read_stamp(const viz::Image& frame) {
  if (frame.pixels().size() < 3) return 0;
  std::uint8_t bytes[9];
  for (int p = 0; p < 3; ++p) {
    bytes[3 * p] = frame.pixels()[p].r;
    bytes[3 * p + 1] = frame.pixels()[p].g;
    bytes[3 * p + 2] = frame.pixels()[p].b;
  }
  std::uint64_t ns = 0;
  for (int i = 0; i < 8; ++i) ns = (ns << 8) | bytes[i];
  return ns;
}

}  // namespace

Result<Report> run_media_bridge(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  const std::size_t bridged_count =
      options.bridged_connections == ScenarioOptions::kBridgedHalf
          ? options.connections / 2
          : options.bridged_connections;
  if (bridged_count > options.connections) {
    return invalid("bridged connections exceed connections");
  }
  net::InProcNetwork net;
  const std::string group = "venue/video";
  ag::UnicastBridge::Options bridge_options;
  bridge_options.group = group;
  bridge_options.address = "bridge:media";
  bridge_options.relay_shards = options.fanout_shards;
  auto bridge = ag::UnicastBridge::start(net, bridge_options);
  if (!bridge.is_ok()) return bridge.status();

  auto sender = ag::MediaStream::join(net, group);
  if (!sender.is_ok()) return sender.status();

  // By default half the receivers sit on the multicast group and half
  // behind the bridge — the paper's mixed multicast/firewalled-venue
  // audience; --bridged sweeps the split.
  const std::size_t direct_count = options.connections - bridged_count;
  std::vector<ag::MediaStream> direct;
  direct.reserve(direct_count);
  for (std::size_t i = 0; i < direct_count; ++i) {
    auto stream = ag::MediaStream::join(net, group);
    if (!stream.is_ok()) return stream.status();
    direct.push_back(std::move(stream).value());
  }
  std::vector<net::ConnectionPtr> bridged;
  bridged.reserve(options.connections - direct_count);
  for (std::size_t i = direct_count; i < options.connections; ++i) {
    auto conn = net.connect(bridge_options.address,
                            Deadline::after(std::chrono::seconds(5)));
    if (!conn.is_ok()) return conn.status();
    bridged.push_back(std::move(conn).value());
  }
  // The bridge registers unicast clients on its pump cycle; give it one
  // cycle so the first frames are not missed by the whole bridged half.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  std::vector<Participant> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&, i] {
      auto& out = outcomes[i];
      if (i < direct_count) {
        auto& stream = direct[i];
        while (common::Clock::now() < end) {
          auto frame = stream.receive_frame(Deadline::after(kPollSlice));
          if (!frame.is_ok()) {
            if (frame.status().code() == StatusCode::kClosed) break;
            continue;
          }
          out.latency.record(common::ns_since(read_stamp(frame.value())));
          ++out.report.ops;
        }
        out.report.transport = stream.stats();
        stream.leave();
      } else {
        auto& conn = bridged[i - direct_count];
        while (common::Clock::now() < end) {
          auto raw = conn->recv(Deadline::after(kPollSlice));
          if (!raw.is_ok()) {
            if (raw.status().code() == StatusCode::kClosed) break;
            continue;
          }
          auto frame = viz::decompress_frame(raw.value());
          if (!frame.is_ok()) {
            ++out.report.errors;
            continue;
          }
          out.latency.record(common::ns_since(read_stamp(frame.value())));
          ++out.report.ops;
        }
        out.report.transport = conn->stats();
        conn->close();
      }
    });
  }

  // Fixed-rate framed stream, ctsTraffic media style: every frame carries
  // its send timestamp; receivers account one-way delay.
  const auto [width, height] = frame_dims(options.payload_bytes);
  const auto interval = rate_interval(options.rate_per_sec);
  auto next_send = t_start;
  std::uint64_t seq = 0;
  std::uint64_t send_errors = 0;
  while (common::Clock::now() < end) {
    std::this_thread::sleep_until(std::min(next_send, end));
    if (common::Clock::now() >= end) break;
    next_send += interval;
    ++seq;
    viz::Image frame(width, height,
                     viz::Color{static_cast<std::uint8_t>(seq * 29),
                                static_cast<std::uint8_t>(seq * 53),
                                static_cast<std::uint8_t>(seq * 97)});
    stamp_frame(frame, common::steady_now_ns());
    if (!sender.value().send_frame(frame).is_ok()) ++send_errors;
  }
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  sender.value().leave();
  const auto relay_stats = bridge.value()->relay_stats();
  const auto host_stats = bridge.value()->host_stats();
  bridge.value()->stop();

  Report report;
  report.name = "media_bridge";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  report.errors += send_errors;
  std::size_t bridge_high_water = host_stats.queue_high_water;
  for (const auto& shard : relay_stats.shards) {
    bridge_high_water = std::max(bridge_high_water, shard.queue_high_water);
  }
  // Explicit even when zero — same contract as the mux and viz scenarios.
  report.service_metrics = {
      {"frames_published", static_cast<double>(seq)},
      {"frames_delivered",
       static_cast<double>(relay_stats.data_delivered +
                           host_stats.data_delivered)},
      {"queue_drops", static_cast<double>(relay_stats.data_dropped +
                                          host_stats.data_dropped)},
      {"queue_depth_high_water", static_cast<double>(bridge_high_water)},
      {"overflow_disconnects", static_cast<double>(relay_stats.disconnects +
                                                   host_stats.disconnects)},
      {"poller_wakeups", static_cast<double>(host_stats.wakeups)},
  };
  return report;
}

// ---------------------------------------------------------------------------
// Hosted-population soaks (control relay, desktop share, gateway)
// ---------------------------------------------------------------------------

namespace {

/// Transport selection shared by the hosted-population soaks; the mux soak
/// predates it and keeps its inline version.
std::unique_ptr<net::Network> make_network(const ScenarioOptions& options) {
  if (options.transport == ScenarioOptions::Transport::kTcp) {
    return std::make_unique<net::TcpNetwork>();
  }
  return std::make_unique<net::InProcNetwork>();
}

/// The flat-thread assertion every hosted service must pass: with the full
/// participant fleet connected, the service owns at most `bound` threads.
/// A thread-per-connection design fails this the moment connections exceed
/// the bound; the hosted design passes at any population.
Status check_thread_bound(const char* service, std::size_t threads,
                          std::size_t connections, std::size_t bound) {
  if (bound != 0 && threads > bound) {
    return Status{StatusCode::kInternal,
                  std::string(service) + " owns " + std::to_string(threads) +
                      " threads with " + std::to_string(connections) +
                      " participants connected; bound is " +
                      std::to_string(bound)};
  }
  return Status::ok();
}

}  // namespace

Result<Report> run_control_soak(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  if (options.connections < 2) {
    return invalid("control soak needs an actor and at least one observer");
  }
  auto net = make_network(options);
  const bool tcp = options.transport == ScenarioOptions::Transport::kTcp;
  visit::ControlServer::Options server_options;
  server_options.address = tcp ? "0" : "ctl:soak";
  server_options.password = "soak";
  auto server = visit::ControlServer::start(*net, server_options);
  if (!server.is_ok()) return server.status();

  // First participant in is the actor; the rest observe the relay.
  std::vector<visit::ControlClient> participants;
  participants.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    auto client = visit::ControlClient::connect(
        *net, server.value()->address(), server_options.password,
        i == 0 ? "actor" : "observer",
        Deadline::after(std::chrono::seconds(5)));
    if (!client.is_ok()) return client.status();
    participants.push_back(std::move(client).value());
  }
  // connect() returns when the handshake completes; registration with the
  // connection host lands on the accept thread shortly after.
  const auto joined = Deadline::after(std::chrono::seconds(5));
  while (server.value()->participant_count() < options.connections &&
         !joined.has_expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::size_t peak_threads = server.value()->service_threads();
  if (Status s = check_thread_bound("control server", peak_threads,
                                    options.connections,
                                    options.max_service_threads);
      !s.is_ok()) {
    return s;
  }

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  std::vector<Participant> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections - 1);
  for (std::size_t i = 1; i < options.connections; ++i) {
    workers.emplace_back([&participants, &outcomes, end, i] {
      auto& observer = participants[i];
      auto& out = outcomes[i];
      while (common::Clock::now() < end) {
        auto record = observer.receive(Deadline::after(kPollSlice));
        if (!record.is_ok()) {
          if (record.status().code() == StatusCode::kClosed) break;
          continue;
        }
        // Record format: "<send-ns>;<padding>".
        const std::uint64_t stamp =
            std::strtoull(record.value().c_str(), nullptr, 10);
        if (stamp != 0) out.latency.record(common::ns_since(stamp));
        ++out.report.ops;
      }
      observer.disconnect();
    });
  }

  // The actor: timestamped control records at the producer rate (the view
  // matrices of the paper's presence channel).
  auto& actor = participants[0];
  auto& actor_out = outcomes[0];
  const auto interval = rate_interval(options.rate_per_sec);
  const std::string padding(
      options.payload_bytes > 24 ? options.payload_bytes - 24 : 0, 'v');
  auto next_send = t_start;
  while (common::Clock::now() < end) {
    std::this_thread::sleep_until(std::min(next_send, end));
    if (common::Clock::now() >= end) break;
    next_send += interval;
    const std::string record =
        std::to_string(common::steady_now_ns()) + ";" + padding;
    const Status s =
        actor.publish(record, Deadline::after(std::chrono::seconds(1)));
    if (!s.is_ok()) {
      if (s.code() == StatusCode::kClosed) break;
      ++actor_out.report.errors;
      continue;
    }
    ++actor_out.report.ops;
  }
  actor.disconnect();
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  const auto server_stats = server.value()->stats();
  server.value()->stop();

  Report report;
  report.name = "control_soak";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  // Explicit even when zero — same contract as every other scenario.
  report.service_metrics = {
      {"service_threads", static_cast<double>(peak_threads)},
      {"control_updates_relayed",
       static_cast<double>(server_stats.updates_relayed)},
      {"control_updates_rejected",
       static_cast<double>(server_stats.updates_rejected)},
  };
  return report;
}

Result<Report> run_desktop_soak(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  auto net = make_network(options);
  const bool tcp = options.transport == ScenarioOptions::Transport::kTcp;
  ag::DesktopShareServer::Options server_options;
  server_options.address = tcp ? "0" : "desk:soak";
  auto server = ag::DesktopShareServer::start(*net, server_options);
  if (!server.is_ok()) return server.status();

  std::vector<ag::DesktopShareViewer> viewers;
  viewers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    auto viewer = ag::DesktopShareViewer::connect(
        *net, server.value()->address(),
        Deadline::after(std::chrono::seconds(5)));
    if (!viewer.is_ok()) return viewer.status();
    viewers.push_back(std::move(viewer).value());
  }
  const auto joined = Deadline::after(std::chrono::seconds(5));
  while (server.value()->viewer_count() < options.connections &&
         !joined.has_expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::size_t peak_threads = server.value()->service_threads();
  if (Status s = check_thread_bound("desktop server", peak_threads,
                                    options.connections,
                                    options.max_service_threads);
      !s.is_ok()) {
    return s;
  }

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  std::vector<Participant> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&viewers, &outcomes, end, i] {
      auto& viewer = viewers[i];
      auto& out = outcomes[i];
      while (common::Clock::now() < end) {
        auto frame = viewer.await_update(Deadline::after(kPollSlice));
        if (!frame.is_ok()) {
          if (frame.status().code() == StatusCode::kClosed) break;
          continue;
        }
        out.latency.record(common::ns_since(read_stamp(frame.value())));
        ++out.report.ops;
        // Viewer 0 exercises the upstream input-event path (active
        // collaboration: "sharing the steering client requires vnc").
        if (i == 0 && out.report.ops % 32 == 0) {
          (void)viewer.send_event("poll=" + std::to_string(out.report.ops),
                                  Deadline::after(std::chrono::seconds(1)));
        }
      }
      viewer.disconnect();
    });
  }

  // The producer: stamped desktop updates at the fixed rate. Every update
  // is delta-compressed per viewer against that viewer's delivered frame.
  const auto [width, height] = frame_dims(options.payload_bytes);
  const auto interval = rate_interval(options.rate_per_sec);
  auto next_send = t_start;
  std::uint64_t published = 0;
  std::uint64_t publish_errors = 0;
  while (common::Clock::now() < end) {
    std::this_thread::sleep_until(std::min(next_send, end));
    if (common::Clock::now() >= end) break;
    next_send += interval;
    ++published;
    viz::Image desktop(width, height,
                       viz::Color{static_cast<std::uint8_t>(published * 31),
                                  static_cast<std::uint8_t>(published * 59),
                                  static_cast<std::uint8_t>(published * 83)});
    stamp_frame(desktop, common::steady_now_ns());
    if (!server.value()->update(desktop).is_ok()) ++publish_errors;
  }
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  const auto server_stats = server.value()->stats();
  server.value()->stop();

  Report report;
  report.name = "desktop_soak";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  report.errors += publish_errors;
  report.service_metrics = {
      {"service_threads", static_cast<double>(peak_threads)},
      {"frames_published", static_cast<double>(published)},
      {"frames_delivered", static_cast<double>(server_stats.updates_pushed)},
      {"desktop_bytes_pushed", static_cast<double>(server_stats.bytes_pushed)},
      {"desktop_events_received",
       static_cast<double>(server_stats.events_received)},
  };
  return report;
}

Result<Report> run_gateway_soak(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  auto net = make_network(options);
  const bool tcp = options.transport == ScenarioOptions::Transport::kTcp;
  unicore::Gateway::Options server_options;
  server_options.address = tcp ? "0" : "gw:soak";
  auto gateway = unicore::Gateway::start(*net, server_options);
  if (!gateway.is_ok()) return gateway.status();
  const unicore::Certificate cert =
      unicore::issue_certificate("CN=soak", "soak-key");
  gateway.value()->trust_store().trust(cert);

  // One raw connection per client; the request/reply loop runs closed-loop
  // (ctsTraffic duplex style), so throughput is the latency reciprocal.
  std::vector<net::ConnectionPtr> conns;
  conns.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    auto conn = net->connect(gateway.value()->address(),
                             Deadline::after(std::chrono::seconds(5)));
    if (!conn.is_ok()) return conn.status();
    conns.push_back(std::move(conn).value());
  }
  const std::size_t peak_threads = gateway.value()->service_threads();
  if (Status s = check_thread_bound("gateway", peak_threads,
                                    options.connections,
                                    options.max_service_threads);
      !s.is_ok()) {
    return s;
  }

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  std::vector<Participant> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&conns, &outcomes, &cert, end, i] {
      auto& conn = conns[i];
      auto& out = outcomes[i];
      // Status transactions against a vsite that is never registered: the
      // gateway authenticates, routes, and answers kNotFound — the full
      // wire round trip without standing up an NJS per soak.
      unicore::UplRequest request;
      request.op = unicore::UplOp::kStatus;
      request.identity = cert;
      request.vsite = "soak-vsite";
      request.job_id = "j" + std::to_string(i);
      const Bytes encoded = unicore::encode_upl_request(request);
      while (common::Clock::now() < end) {
        const auto sent_at = common::Clock::now();
        if (!conn->send(common::ByteSpan(encoded),
                        Deadline::after(std::chrono::seconds(1)))
                 .is_ok()) {
          break;
        }
        auto raw = conn->recv(Deadline::after(std::chrono::seconds(1)));
        if (!raw.is_ok()) {
          if (raw.status().code() == StatusCode::kClosed) break;
          ++out.report.timeouts;
          continue;
        }
        if (!unicore::decode_upl_response(raw.value()).is_ok()) {
          ++out.report.errors;
          continue;
        }
        out.latency.record(common::Clock::now() - sent_at);
        ++out.report.ops;
      }
      out.report.transport = conn->stats();
      conn->close();
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  const auto gateway_stats = gateway.value()->stats();
  gateway.value()->stop();

  Report report;
  report.name = "gateway_soak";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  report.service_metrics = {
      {"service_threads", static_cast<double>(peak_threads)},
      {"gateway_transactions",
       static_cast<double>(gateway_stats.transactions)},
      {"gateway_rejected_untrusted",
       static_cast<double>(gateway_stats.rejected_untrusted)},
  };
  return report;
}

// ---------------------------------------------------------------------------
// Chaos soaks (seeded fault injection + supervised recovery)
// ---------------------------------------------------------------------------

namespace {

/// One chaos participant's outcome: the usual soak accounting plus its flap
/// ledger — what it felt, what came back, and how fast.
struct ChaosOutcome {
  Participant participant;
  std::uint64_t observed_disconnects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t reconnect_failures = 0;
  std::uint64_t dial_attempts = 0;
  std::uint64_t dial_retries = 0;
  /// Disconnect observed -> first data frame on the re-dialed session.
  Histogram recovery;
};

/// Transport counters accumulate across a participant's incarnations (the
/// pre-flap connection's traffic must not vanish with the connection).
void accumulate_transport(net::ConnStats& into, const net::ConnStats& from) {
  into.messages_sent += from.messages_sent;
  into.bytes_sent += from.bytes_sent;
  into.messages_received += from.messages_received;
  into.bytes_received += from.bytes_received;
}

/// The chaos fault plan: every initial participant connection is abruptly
/// closed after a seeded per-connection op threshold, optionally with fixed
/// latency on every op until then. Capping the faulted ordinals at the
/// initial fleet size leaves re-dialed replacements clean — which is what
/// makes "every flap recovered by the end" a deterministic assertion, and
/// the injected counts identical run-to-run for a fixed seed.
net::FaultPlan chaos_plan(const ScenarioOptions& options) {
  net::FaultPlan plan;
  plan.seed = options.seed;
  plan.max_faulted_connections = options.connections;
  if (options.fault_delay > common::Duration::zero()) {
    net::Fault delay;
    delay.kind = net::FaultKind::kDelay;
    delay.delay = options.fault_delay;
    plan.faults.push_back(delay);
  }
  net::Fault flap;
  flap.kind = net::FaultKind::kClose;
  flap.after_ops = options.fault_after_ops;
  flap.after_ops_jitter = options.fault_after_ops_jitter;
  plan.faults.push_back(flap);
  return plan;
}

/// The chaos ledger every chaos scenario reports, explicit even when zero:
/// injected (what the plan fired) vs observed (what participants felt) vs
/// recovered (what came back and saw data again), plus how fast and how
/// many dials it took.
void append_chaos_metrics(Report& report, const net::FaultStats& fault_stats,
                          const std::vector<ChaosOutcome>& outcomes) {
  Histogram recovery;
  std::uint64_t observed = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t failures = 0;
  std::uint64_t dial_attempts = 0;
  std::uint64_t dial_retries = 0;
  for (const auto& outcome : outcomes) {
    observed += outcome.observed_disconnects;
    reconnects += outcome.reconnects;
    failures += outcome.reconnect_failures;
    dial_attempts += outcome.dial_attempts;
    dial_retries += outcome.dial_retries;
    recovery.merge(outcome.recovery);
  }
  report.service_metrics.emplace_back(
      "chaos_faulted_connections",
      static_cast<double>(fault_stats.connections));
  report.service_metrics.emplace_back(
      "chaos_injected_closes", static_cast<double>(fault_stats.closes));
  report.service_metrics.emplace_back(
      "chaos_injected_delay_ops",
      static_cast<double>(fault_stats.delayed_ops));
  report.service_metrics.emplace_back("chaos_observed_disconnects",
                                      static_cast<double>(observed));
  report.service_metrics.emplace_back("chaos_reconnects",
                                      static_cast<double>(reconnects));
  report.service_metrics.emplace_back("chaos_reconnect_failures",
                                      static_cast<double>(failures));
  report.service_metrics.emplace_back("chaos_recovered",
                                      static_cast<double>(recovery.count()));
  report.service_metrics.emplace_back(
      "chaos_recovery_p50_us", static_cast<double>(recovery.p50()) / 1000.0);
  report.service_metrics.emplace_back(
      "chaos_recovery_p99_us", static_cast<double>(recovery.p99()) / 1000.0);
  report.service_metrics.emplace_back("chaos_dial_attempts",
                                      static_cast<double>(dial_attempts));
  report.service_metrics.emplace_back("chaos_dial_retries",
                                      static_cast<double>(dial_retries));
  // Every observed flap must have reconnected and seen data again;
  // anything less is a partial run.
  if (failures > 0 || recovery.count() < observed) {
    report.completeness = StatusCode::kUnavailable;
  }
}

}  // namespace

Result<Report> run_chaos_mux_soak(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  auto net = make_network(options);
  const bool tcp = options.transport == ScenarioOptions::Transport::kTcp;
  net::reset_tcp_wire_stats();
  visit::Multiplexer::Options mux_options;
  mux_options.sim_address = tcp ? "0" : "chaos:sim";
  mux_options.viewer_address = tcp ? "0" : "chaos:viewer";
  mux_options.password = "chaos";
  mux_options.fanout_shards = options.fanout_shards;
  mux_options.use_event_host = options.use_event_host;
  if (options.scrape_metricsz) {
    mux_options.metricsz_address = tcp ? "0" : "chaos:metricsz";
  }
  auto mux = visit::Multiplexer::start(*net, mux_options);
  if (!mux.is_ok()) return mux.status();

  // Viewers dial through the fault decorator; the simulation and the
  // mid-run scrape stay on the clean network — the faults under test are
  // the audience's, not the producer's.
  net::FaultNetwork chaos_net(*net, chaos_plan(options));

  visit::ViewerClient::Options viewer_options;
  viewer_options.mux_address = mux.value()->viewer_address();
  viewer_options.password = mux_options.password;
  std::vector<visit::ViewerClient> viewers;
  viewers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    auto viewer = visit::ViewerClient::connect(
        chaos_net, viewer_options, Deadline::after(std::chrono::seconds(5)));
    if (!viewer.is_ok()) return viewer.status();
    viewers.push_back(std::move(viewer).value());
  }

  visit::SimClientOptions sim_options;
  sim_options.server_address = mux.value()->sim_address();
  sim_options.password = mux_options.password;
  auto sim = visit::SimClient::connect(
      *net, sim_options, Deadline::after(std::chrono::seconds(5)));
  if (!sim.is_ok()) return sim.status();

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  // Stragglers flapping near the end still get to prove recovery: the mux
  // replays its cached last sample to every re-attached viewer, so the
  // grace window needs no live producer.
  const auto hard_end = end + std::chrono::seconds(2);
  std::vector<ChaosOutcome> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&, i] {
      auto viewer = std::move(viewers[i]);
      auto& out = outcomes[i];
      net::Reconnector::Options reconnect_options;
      reconnect_options.seed =
          options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      net::Reconnector reconnector(reconnect_options);
      bool awaiting_recovery = false;
      common::TimePoint dropped_at{};
      const auto run = [&] {
        for (;;) {
          bool dropped = false;
          while (common::Clock::now() <
                 (awaiting_recovery ? hard_end : end)) {
            auto event = viewer.poll(Deadline::after(kPollSlice));
            if (!event.is_ok()) {
              if (event.status().code() == StatusCode::kClosed) {
                dropped = true;
                break;
              }
              continue;
            }
            if (event.value().kind ==
                visit::ViewerClient::Event::Kind::kBye) {
              // Graceful session end (the simulation left) — not a fault;
              // the chaos ledger counts only abrupt closes.
              return;
            }
            if (event.value().kind !=
                    visit::ViewerClient::Event::Kind::kData ||
                event.value().tag != kSampleTag ||
                event.value().message.payload.size() < 8) {
              continue;
            }
            if (awaiting_recovery) {
              // First sample on the re-attached session is the replay
              // seed: it proves resumption, but its stamp predates the
              // flap, so it feeds the recovery histogram, not latency.
              out.recovery.record(common::Clock::now() - dropped_at);
              awaiting_recovery = false;
              continue;
            }
            out.participant.latency.record(
                common::ns_since(common::read_uint<std::uint64_t>(
                    event.value().message.payload, ByteOrder::kBig)));
            ++out.participant.report.ops;
          }
          if (!dropped) return;
          accumulate_transport(out.participant.report.transport,
                               viewer.stats());
          ++out.observed_disconnects;
          dropped_at = common::Clock::now();
          // Reconnect through the same fault network: ordinals past the
          // initial fleet carry no plan, so the replacement lives.
          auto conn = reconnector.dial(chaos_net, viewer_options.mux_address,
                                       Deadline{hard_end});
          if (!conn.is_ok()) {
            ++out.reconnect_failures;
            return;
          }
          auto reattached = visit::ViewerClient::attach(
              std::move(conn).value(), viewer_options, Deadline{hard_end});
          if (!reattached.is_ok()) {
            ++out.reconnect_failures;
            return;
          }
          viewer = std::move(reattached).value();
          ++out.reconnects;
          awaiting_recovery = true;
        }
      };
      run();
      const auto dial_stats = reconnector.stats();
      out.dial_attempts = dial_stats.attempts;
      out.dial_retries = dial_stats.retries;
      accumulate_transport(out.participant.report.transport, viewer.stats());
      viewer.disconnect();
    });
  }

  const SimDrive drive = drive_sim(*net, sim.value(),
                                   mux.value()->metricsz_address(), options,
                                   t_start, end);
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  mux.value()->stop();

  Report report;
  report.name = "chaos_mux";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.participant.report,
                          outcome.participant.latency);
  }
  report.timeouts += drive.timeouts;
  append_chaos_metrics(report, chaos_net.stats(), outcomes);
  report.service_metrics.emplace_back("samples_published",
                                      static_cast<double>(drive.sent));
  report.service_metrics.emplace_back("metricsz_scrapes",
                                      static_cast<double>(drive.scrapes_ok));
  // Server-side truth captured mid-run rides along where it does not
  // collide with the chaos ledger.
  for (const auto& [key, value] : drive.scraped) {
    auto it = std::find_if(
        report.service_metrics.begin(), report.service_metrics.end(),
        [&key = key](const auto& pair) { return pair.first == key; });
    if (it == report.service_metrics.end()) {
      report.service_metrics.emplace_back(key, value);
    }
  }
  return report;
}

Result<Report> run_chaos_bridge_soak(const ScenarioOptions& options) {
  if (Status s = check(options); !s.is_ok()) return s;
  net::InProcNetwork net;
  const std::string group = "venue/video";
  ag::UnicastBridge::Options bridge_options;
  bridge_options.group = group;
  bridge_options.address = "chaosbridge:media";
  bridge_options.relay_shards = options.fanout_shards;
  auto bridge = ag::UnicastBridge::start(net, bridge_options);
  if (!bridge.is_ok()) return bridge.status();

  auto sender = ag::MediaStream::join(net, group);
  if (!sender.is_ok()) return sender.status();

  // Every receiver sits behind the bridge and dials it through the fault
  // decorator — the bridge side of the wire is exactly where the paper's
  // venue links flap.
  net::FaultNetwork chaos_net(net, chaos_plan(options));
  std::vector<net::ConnectionPtr> bridged;
  bridged.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    auto conn = chaos_net.connect(bridge_options.address,
                                  Deadline::after(std::chrono::seconds(5)));
    if (!conn.is_ok()) return conn.status();
    bridged.push_back(std::move(conn).value());
  }
  // The bridge registers unicast clients on its pump cycle; give it one
  // cycle so the first frames are not missed by the whole fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  const auto t_start = common::Clock::now();
  const auto end = t_start + options.duration;
  // The bridge has no replay path — it relays live frames only — so the
  // sender keeps publishing past `end` while any receiver is still mid
  // recovery, and recovery means the first live frame on the re-dialed
  // connection (which also covers the bridge re-registering it).
  const auto hard_end = end + std::chrono::seconds(2);
  std::atomic<std::size_t> active{options.connections};
  std::vector<ChaosOutcome> outcomes(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&, i] {
      auto& out = outcomes[i];
      auto conn = std::move(bridged[i]);
      net::Reconnector::Options reconnect_options;
      reconnect_options.seed =
          options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      net::Reconnector reconnector(reconnect_options);
      bool awaiting_recovery = false;
      common::TimePoint dropped_at{};
      const auto run = [&] {
        for (;;) {
          bool dropped = false;
          while (common::Clock::now() <
                 (awaiting_recovery ? hard_end : end)) {
            auto raw = conn->recv(Deadline::after(kPollSlice));
            if (!raw.is_ok()) {
              if (raw.status().code() == StatusCode::kClosed) {
                dropped = true;
                break;
              }
              continue;
            }
            auto frame = viz::decompress_frame(raw.value());
            if (!frame.is_ok()) {
              ++out.participant.report.errors;
              continue;
            }
            if (awaiting_recovery) {
              out.recovery.record(common::Clock::now() - dropped_at);
              awaiting_recovery = false;
              continue;
            }
            out.participant.latency.record(
                common::ns_since(read_stamp(frame.value())));
            ++out.participant.report.ops;
          }
          if (!dropped) return;
          accumulate_transport(out.participant.report.transport,
                               conn->stats());
          ++out.observed_disconnects;
          dropped_at = common::Clock::now();
          auto redial = reconnector.dial(chaos_net, bridge_options.address,
                                         Deadline{hard_end});
          if (!redial.is_ok()) {
            ++out.reconnect_failures;
            return;
          }
          conn = std::move(redial).value();
          ++out.reconnects;
          awaiting_recovery = true;
        }
      };
      run();
      const auto dial_stats = reconnector.stats();
      out.dial_attempts = dial_stats.attempts;
      out.dial_retries = dial_stats.retries;
      accumulate_transport(out.participant.report.transport, conn->stats());
      conn->close();
      active.fetch_sub(1);
    });
  }

  // Fixed-rate stamped frames; the loop outlives `end` only while a
  // receiver is still proving its recovery (no replay to lean on).
  const auto [width, height] = frame_dims(options.payload_bytes);
  const auto interval = rate_interval(options.rate_per_sec);
  auto next_send = t_start;
  std::uint64_t seq = 0;
  std::uint64_t send_errors = 0;
  for (;;) {
    const auto now = common::Clock::now();
    if (now >= hard_end) break;
    if (now >= end && active.load() == 0) break;
    std::this_thread::sleep_until(std::min(next_send, hard_end));
    next_send += interval;
    ++seq;
    viz::Image frame(width, height,
                     viz::Color{static_cast<std::uint8_t>(seq * 29),
                                static_cast<std::uint8_t>(seq * 53),
                                static_cast<std::uint8_t>(seq * 97)});
    stamp_frame(frame, common::steady_now_ns());
    if (!sender.value().send_frame(frame).is_ok()) ++send_errors;
  }
  for (auto& w : workers) w.join();
  const auto elapsed = common::Clock::now() - t_start;
  sender.value().leave();
  const auto relay_stats = bridge.value()->relay_stats();
  const auto host_stats = bridge.value()->host_stats();
  bridge.value()->stop();

  Report report;
  report.name = "chaos_bridge";
  report.connections = options.connections;
  report.elapsed = elapsed;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.participant.report,
                          outcome.participant.latency);
  }
  report.errors += send_errors;
  append_chaos_metrics(report, chaos_net.stats(), outcomes);
  report.service_metrics.emplace_back("frames_published",
                                      static_cast<double>(seq));
  report.service_metrics.emplace_back(
      "frames_delivered", static_cast<double>(relay_stats.data_delivered +
                                              host_stats.data_delivered));
  report.service_metrics.emplace_back(
      "queue_drops", static_cast<double>(relay_stats.data_dropped +
                                         host_stats.data_dropped));
  report.service_metrics.emplace_back(
      "overflow_disconnects", static_cast<double>(relay_stats.disconnects +
                                                  host_stats.disconnects));
  return report;
}

// ---------------------------------------------------------------------------
// Worker-executable specs + the distributed driver
// ---------------------------------------------------------------------------

namespace {

/// Worker i's share when `total` is split across `workers` slots.
std::size_t slice_of(std::size_t total, std::size_t workers, std::size_t i) {
  return total / workers + (i < total % workers ? 1 : 0);
}

std::uint64_t derive_seed(std::uint64_t seed, std::size_t i) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
}

/// "0" stays "0" (kernel-assigned TCP port); an in-process stem becomes a
/// distinct name per role so one InProcNetwork hosts the whole topology.
std::string bind_address(const DistributedOptions& options,
                         const char* suffix) {
  return options.address_stem == "0" ? std::string("0")
                                     : options.address_stem + ":" + suffix;
}

WireWorkerReport shard_of(const Report& report, std::uint32_t worker_index) {
  WireWorkerReport shard;
  shard.worker_index = worker_index;
  shard.connections = report.connections;
  shard.ops = report.ops;
  shard.timeouts = report.timeouts;
  shard.errors = report.errors;
  shard.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(report.elapsed)
          .count());
  shard.transport = report.transport;
  shard.latency = report.latency;
  return shard;
}

/// kRaw: the classic driver fleet against a LoadPeer. run_workload ramps
/// its own connections (the stagger is part of the measured shape), so
/// prepare() only validates — READY means "spec accepted".
class RawRunner : public SpecRunner {
 public:
  RawRunner(net::Network& net, WorkloadSpec spec)
      : net_(net), spec_(std::move(spec)) {}

  Status prepare(Deadline /*deadline*/) override {
    return spec_.workload.validate();
  }

  Result<WireWorkerReport> execute() override {
    auto report = run_workload(net_, spec_.target, spec_.workload);
    if (!report.is_ok()) return report.status();
    return shard_of(report.value(), spec_.worker_index);
  }

 private:
  net::Network& net_;
  WorkloadSpec spec_;
};

/// kMuxViewers: this worker's slice of the steering-soak viewer fleet.
/// prepare() connects every viewer (so the whole distributed fleet is in
/// place before any sample flows); execute() runs the same drain loop as
/// the in-process soak.
class MuxViewerRunner : public SpecRunner {
 public:
  MuxViewerRunner(net::Network& net, WorkloadSpec spec)
      : net_(net), spec_(std::move(spec)) {}

  Status prepare(Deadline deadline) override {
    visit::ViewerClient::Options viewer_options;
    viewer_options.mux_address = spec_.target;
    viewer_options.password = spec_.password;
    viewers_.reserve(spec_.workload.connections);
    for (std::size_t i = 0; i < spec_.workload.connections; ++i) {
      auto viewer = visit::ViewerClient::connect(net_, viewer_options,
                                                 deadline);
      if (!viewer.is_ok()) return viewer.status();
      viewers_.push_back(std::move(viewer).value());
    }
    return Status::ok();
  }

  Result<WireWorkerReport> execute() override {
    const auto t_start = common::Clock::now();
    const auto end = t_start + spec_.workload.duration;
    std::vector<Participant> outcomes(viewers_.size());
    std::vector<std::thread> workers;
    workers.reserve(viewers_.size());
    for (std::size_t i = 0; i < viewers_.size(); ++i) {
      workers.emplace_back([this, &outcomes, end, i] {
        drain_viewer(viewers_[i], end, outcomes[i]);
      });
    }
    for (auto& w : workers) w.join();
    WireWorkerReport shard;
    shard.worker_index = spec_.worker_index;
    shard.connections = viewers_.size();
    shard.elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            common::Clock::now() - t_start)
            .count());
    for (const auto& outcome : outcomes) {
      shard.ops += outcome.report.ops;
      shard.timeouts += outcome.report.timeouts;
      shard.errors += outcome.report.errors;
      shard.transport.messages_sent += outcome.report.transport.messages_sent;
      shard.transport.bytes_sent += outcome.report.transport.bytes_sent;
      shard.transport.messages_received +=
          outcome.report.transport.messages_received;
      shard.transport.bytes_received +=
          outcome.report.transport.bytes_received;
      shard.latency.merge(outcome.latency);
    }
    return shard;
  }

 private:
  net::Network& net_;
  WorkloadSpec spec_;
  std::vector<visit::ViewerClient> viewers_;
};

}  // namespace

Result<std::unique_ptr<SpecRunner>> make_spec_runner(net::Network& net,
                                                     const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadSpec::Kind::kRaw:
      return std::unique_ptr<SpecRunner>(new RawRunner(net, spec));
    case WorkloadSpec::Kind::kMuxViewers:
      return std::unique_ptr<SpecRunner>(new MuxViewerRunner(net, spec));
  }
  return invalid("unknown spec kind");
}

Result<Report> run_distributed_raw(net::Network& net,
                                   const DistributedOptions& options) {
  if (options.workers == 0) return invalid("workers must be >= 1");
  if (Status s = options.workload.validate(); !s.is_ok()) return s;
  if (options.workload.connections < options.workers) {
    return invalid("need at least one connection per worker");
  }
  net::reset_tcp_wire_stats();
  auto peer = LoadPeer::start(net, bind_address(options, "peer"));
  if (!peer.is_ok()) return peer.status();

  // The target's own /metricsz: the controller scrapes it after the run, so
  // the merged report carries server-side delivery truth next to the
  // client-side shards (for kBurst the two reconcile exactly).
  obs::Registry target_registry;
  LoadPeer* peer_ptr = peer.value().get();
  target_registry.counter_fn("peer_stream_frames", "frames",
                             [peer_ptr] { return peer_ptr->stream_frames(); });
  target_registry.timer_fn("peer_stream_latency", [peer_ptr] {
    return peer_ptr->stream_latency();
  });
  auto target_mz = obs::MetricsEndpoint::start(
      net, bind_address(options, "metricsz"),
      [&target_registry] { return target_registry.snapshot(); });
  if (!target_mz.is_ok()) return target_mz.status();

  Controller::Options copts;
  copts.listen_address = options.control_listen.empty()
                             ? bind_address(options, "ctl")
                             : options.control_listen;
  copts.workers = options.workers;
  copts.join_timeout = options.join_timeout;
  auto controller = Controller::start(net, copts);
  if (!controller.is_ok()) return controller.status();
  if (options.on_listening) options.on_listening(controller.value()->address());

  // A short fleet still runs (the report comes back flagged partial); only
  // zero workers is fatal.
  (void)controller.value()->await_workers().or_log("loadgen.dist");
  const std::size_t fleet = controller.value()->live_workers();
  if (fleet == 0) {
    return Status{StatusCode::kUnavailable, "no workers joined"};
  }

  std::vector<WorkloadSpec> specs(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    specs[i].kind = WorkloadSpec::Kind::kRaw;
    specs[i].workload = options.workload;
    specs[i].workload.connections =
        slice_of(options.workload.connections, fleet, i);
    specs[i].workload.seed = derive_seed(options.workload.seed, i);
    specs[i].target = peer.value()->address();
    specs[i].worker_index = static_cast<std::uint32_t>(i);
    specs[i].worker_count = static_cast<std::uint32_t>(fleet);
  }
  (void)controller.value()->assign(specs).or_log("loadgen.dist");
  if (controller.value()->live_workers() == 0) {
    return Status{StatusCode::kUnavailable, "no worker survived prepare"};
  }
  if (Status s = controller.value()->start_run(); !s.is_ok()) return s;

  Report report = controller.value()->collect(
      Deadline::after(options.workload.ramp_up + options.workload.duration +
                      options.collect_slack));
  report.name =
      "raw_dist/" + std::string(to_string(options.workload.pattern));
  if (options.workload.pattern == Pattern::kBurst) {
    // One-way latency lives at the receiver for burst; fold the peer-side
    // histogram in, exactly as the single-driver path does.
    report.latency.merge(peer.value()->stream_latency());
  }
  auto scraped =
      obs::scrape_metrics(net, target_mz.value()->address(),
                          Deadline::after(std::chrono::seconds(2)));
  if (scraped.or_log("loadgen.dist")) {
    for (const auto& [key, value] : scraped.value()) {
      report.service_metrics.emplace_back("target_" + key, value);
    }
  }
  target_mz.value()->stop();
  peer.value()->stop();
  return report;
}

Result<Report> run_distributed_mux_soak(net::Network& net,
                                        const DistributedOptions& options) {
  if (Status s = check(options.scenario); !s.is_ok()) return s;
  if (options.workers == 0) return invalid("workers must be >= 1");
  if (options.scenario.connections < options.workers) {
    return invalid("need at least one viewer per worker");
  }
  net::reset_tcp_wire_stats();
  visit::Multiplexer::Options mux_options;
  mux_options.sim_address = bind_address(options, "sim");
  mux_options.viewer_address = bind_address(options, "viewer");
  mux_options.password = "soak";
  mux_options.fanout_shards = options.scenario.fanout_shards;
  mux_options.use_event_host = options.scenario.use_event_host;
  if (options.scenario.scrape_metricsz) {
    mux_options.metricsz_address = bind_address(options, "metricsz");
  }
  auto mux = visit::Multiplexer::start(net, mux_options);
  if (!mux.is_ok()) return mux.status();

  Controller::Options copts;
  copts.listen_address = options.control_listen.empty()
                             ? bind_address(options, "ctl")
                             : options.control_listen;
  copts.workers = options.workers;
  copts.join_timeout = options.join_timeout;
  auto controller = Controller::start(net, copts);
  if (!controller.is_ok()) return controller.status();
  if (options.on_listening) options.on_listening(controller.value()->address());

  (void)controller.value()->await_workers().or_log("loadgen.dist");
  const std::size_t fleet = controller.value()->live_workers();
  if (fleet == 0) {
    return Status{StatusCode::kUnavailable, "no workers joined"};
  }

  std::vector<WorkloadSpec> specs(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    specs[i].kind = WorkloadSpec::Kind::kMuxViewers;
    specs[i].workload.connections =
        slice_of(options.scenario.connections, fleet, i);
    specs[i].workload.duration = options.scenario.duration;
    specs[i].workload.seed = derive_seed(options.scenario.seed, i);
    specs[i].target = mux.value()->viewer_address();
    specs[i].password = mux_options.password;
    specs[i].worker_index = static_cast<std::uint32_t>(i);
    specs[i].worker_count = static_cast<std::uint32_t>(fleet);
  }
  // Workers open their viewer fleets during assign(); READY from everyone
  // means the whole distributed audience is connected before the first
  // sample — the same full-fan-out contract as the in-process soak.
  const bool all_ready =
      controller.value()->assign(specs).or_log("loadgen.dist");
  if (controller.value()->live_workers() == 0) {
    return Status{StatusCode::kUnavailable, "no worker survived prepare"};
  }

  // Peak-population shape, measured with the fleet connected and before
  // traffic; only meaningful when every worker made it.
  const auto connected_stats = mux.value()->stats();
  if (all_ready && options.scenario.max_service_threads != 0 &&
      connected_stats.service_threads > options.scenario.max_service_threads) {
    return Status{StatusCode::kInternal,
                  "service owns " +
                      std::to_string(connected_stats.service_threads) +
                      " threads with " +
                      std::to_string(options.scenario.connections) +
                      " viewers connected; bound is " +
                      std::to_string(options.scenario.max_service_threads)};
  }

  visit::SimClientOptions sim_options;
  sim_options.server_address = mux.value()->sim_address();
  sim_options.password = mux_options.password;
  auto sim = visit::SimClient::connect(
      net, sim_options, Deadline::after(std::chrono::seconds(5)));
  if (!sim.is_ok()) return sim.status();

  if (Status s = controller.value()->start_run(); !s.is_ok()) return s;
  const auto t_start = common::Clock::now();
  const auto end = t_start + options.scenario.duration;
  const SimDrive drive =
      drive_sim(net, sim.value(), mux.value()->metricsz_address(),
                options.scenario, t_start, end);

  Report report =
      controller.value()->collect(Deadline::after(options.collect_slack));
  mux.value()->stop();
  report.name = "mux_soak_dist";
  report.timeouts += drive.timeouts;
  report.service_metrics.emplace_back("samples_published",
                                      static_cast<double>(drive.sent));
  report.service_metrics.emplace_back("service_threads",
                                      static_cast<double>(
                                          connected_stats.service_threads));
  report.service_metrics.emplace_back(
      "hosted_viewers", static_cast<double>(connected_stats.event_host.hosted));
  report.service_metrics.emplace_back("metricsz_scrapes",
                                      static_cast<double>(drive.scrapes_ok));
  // The target's mid-run scrape rows ride along unprefixed (same keys as
  // the in-process soak); peak-population keys above stay authoritative.
  for (const auto& [key, value] : drive.scraped) {
    if (key == "service_threads" || key == "hosted_viewers" ||
        key == "event_host_pollers") {
      continue;
    }
    report.service_metrics.emplace_back(key, value);
  }
  return report;
}

}  // namespace cs::loadgen
