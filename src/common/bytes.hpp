// Byte-buffer helpers and explicit endian conversion.
//
// The wire layer (cs::wire) writes multi-byte integers in a *declared* byte
// order so that a receiver can convert transparently (the VISIT "server-side
// conversion" design, paper section 3.2). These helpers are the only place
// where byte-order punning happens.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace cs::common {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Byte order of multi-byte scalars in a buffer.
enum class ByteOrder : std::uint8_t {
  kLittle = 0,
  kBig = 1,
};

/// Byte order of the machine we are running on.
constexpr ByteOrder native_order() noexcept {
  return std::endian::native == std::endian::big ? ByteOrder::kBig
                                                 : ByteOrder::kLittle;
}

/// Reverses the byte order of an unsigned integer.
template <typename T>
constexpr T byteswap(T value) noexcept {
  static_assert(std::is_unsigned_v<T>, "byteswap operates on unsigned types");
  if constexpr (sizeof(T) == 1) {
    return value;
  } else {
    T out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out = static_cast<T>(out << 8) |
            static_cast<T>((value >> (8 * i)) & 0xffU);
    }
    return out;
  }
}

/// Appends an unsigned integer in the given byte order.
template <typename T>
void append_uint(Bytes& out, T value, ByteOrder order) {
  static_assert(std::is_unsigned_v<T>);
  if (order != native_order()) value = byteswap(value);
  const std::size_t old_size = out.size();
  out.resize(old_size + sizeof(T));
  std::memcpy(out.data() + old_size, &value, sizeof(T));
}

/// Reads an unsigned integer in the given byte order.
/// Precondition: in.size() >= sizeof(T).
template <typename T>
T read_uint(ByteSpan in, ByteOrder order) noexcept {
  static_assert(std::is_unsigned_v<T>);
  T value{};
  std::memcpy(&value, in.data(), sizeof(T));
  if (order != native_order()) value = byteswap(value);
  return value;
}

/// Appends raw bytes.
inline void append_bytes(Bytes& out, ByteSpan data) {
  out.insert(out.end(), data.begin(), data.end());
}

/// View of a trivially copyable object as bytes.
template <typename T>
ByteSpan as_bytes(const T& value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return ByteSpan{reinterpret_cast<const std::uint8_t*>(&value), sizeof(T)};
}

}  // namespace cs::common
