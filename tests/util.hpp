// Shared test plumbing: byte/string conversions, predicate polling, and the
// ephemeral-port listener-spinup helpers that every TCP-facing suite used
// to hand-roll. Dialing always goes through connect_retry, so a listener
// that is still coming up (or an accept loop that has not reached the
// socket yet) costs a retry, not a flaky kNotFound failure.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/inproc.hpp"
#include "net/reconnect.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace cs::testutil {

inline common::Bytes bytes_of(std::string_view s) {
  return common::Bytes{s.begin(), s.end()};
}

inline std::string text_of(const common::Bytes& b) {
  return std::string{b.begin(), b.end()};
}

/// Polls `pred` (1ms cadence) until it holds or `budget` elapses.
inline bool wait_until(const std::function<bool()>& pred,
                       std::chrono::milliseconds budget =
                           std::chrono::milliseconds(5000)) {
  const common::Deadline deadline = common::Deadline::after(budget);
  while (!pred()) {
    if (deadline.has_expired()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Dials `address`, retrying the not-up-yet failures until `deadline`.
/// Thin alias over net::connect_retry — the supervised dial loop lives in
/// src/net/reconnect.hpp now; this keeps the historical testutil name.
inline common::Result<net::ConnectionPtr> connect_retry(
    net::Network& net, const std::string& address, common::Deadline deadline) {
  return net::connect_retry(net, address, deadline);
}

/// One accepted loopback TCP pair on a kernel-assigned port: `client` is
/// the caller's end, `server` the accepted end (hand it to a host, serve
/// loop, ...). Use inside a void function (gtest ASSERTs).
struct TcpPair {
  net::TcpNetwork net;
  net::ListenerPtr listener;
  net::ConnectionPtr client;
  net::ConnectionPtr server;

  void connect() {
    auto l = net.listen("0");
    ASSERT_TRUE(l.is_ok());
    listener = std::move(l).value();
    auto c = net::connect_retry(net, listener->address(),
                                common::Deadline::after(std::chrono::seconds(2)));
    ASSERT_TRUE(c.is_ok());
    client = std::move(c).value();
    auto s = listener->accept(common::Deadline::after(std::chrono::seconds(2)));
    ASSERT_TRUE(s.is_ok());
    server = std::move(s).value();
  }
};

/// An accepted pair over either transport, network kept alive alongside —
/// the parameterized-parity shape (TestWithParam over inproc + TCP).
struct TransportPair {
  std::shared_ptr<net::Network> net;  // keeps an inproc universe alive
  net::ListenerPtr listener;
  net::ConnectionPtr client;
  net::ConnectionPtr server;
};

/// In-process pair with a deliberately small receive window (sends block
/// quickly — backpressure tests) unless overridden.
inline TransportPair make_inproc_pair(std::size_t recv_capacity_bytes =
                                          64u << 10) {
  TransportPair pair;
  auto net = std::make_shared<net::InProcNetwork>();
  pair.listener = net->listen("parity:1").value();
  net::ConnectOptions opts;
  opts.recv_capacity_bytes = recv_capacity_bytes;
  pair.client = net->connect("parity:1",
                             common::Deadline::after(std::chrono::seconds(1)),
                             opts)
                    .value();
  pair.server =
      pair.listener->accept(common::Deadline::after(std::chrono::seconds(1)))
          .value();
  pair.net = std::move(net);
  return pair;
}

/// Loopback TCP pair on a kernel-assigned port.
inline TransportPair make_tcp_pair() {
  TransportPair pair;
  auto net = std::make_shared<net::TcpNetwork>();
  pair.listener = net->listen("0").value();
  pair.client =
      net::connect_retry(*net, pair.listener->address(),
                         common::Deadline::after(std::chrono::seconds(2)))
          .value();
  pair.server =
      pair.listener->accept(common::Deadline::after(std::chrono::seconds(2)))
          .value();
  pair.net = std::move(net);
  return pair;
}

}  // namespace cs::testutil
