#include "unicore/client.hpp"

#include <thread>

namespace cs::unicore {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Result<UplResponse> UnicoreClient::transact(UplRequest request) {
  request.identity = options_.identity;
  const Deadline deadline = Deadline::after(options_.transaction_timeout);
  std::scoped_lock lock(mutex_);
  // (Re)establish the single connection to the gateway on demand; a broken
  // connection only fails the current transaction, the next one reconnects
  // — UNICORE's stateless-client property.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!conn_ || !conn_->is_open()) {
      auto conn = net_.connect(options_.gateway_address, deadline);
      if (!conn.is_ok()) return conn.status();
      conn_ = std::move(conn).value();
    }
    if (!conn_->send(encode_upl_request(request), deadline).is_ok()) {
      conn_.reset();
      continue;
    }
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kTimeout) return raw.status();
      conn_.reset();
      continue;
    }
    return decode_upl_response(raw.value());
  }
  return Status{StatusCode::kUnavailable, "gateway unreachable"};
}

Result<std::string> UnicoreClient::submit(const Ajo& ajo) {
  UplRequest request;
  request.op = UplOp::kConsign;
  request.vsite = ajo.vsite;
  request.text = ajo.serialize();
  auto response = transact(std::move(request));
  if (!response.is_ok()) return response.status();
  if (!response.value().status.is_ok()) return response.value().status;
  return response.value().text;
}

Result<JobState> UnicoreClient::status(const std::string& vsite,
                                       const std::string& job_id) {
  UplRequest request;
  request.op = UplOp::kStatus;
  request.vsite = vsite;
  request.job_id = job_id;
  auto response = transact(std::move(request));
  if (!response.is_ok()) return response.status();
  if (!response.value().status.is_ok()) return response.value().status;
  const std::string& name = response.value().text;
  for (int s = 0; s <= static_cast<int>(JobState::kFailed); ++s) {
    if (name == to_string(static_cast<JobState>(s))) {
      return static_cast<JobState>(s);
    }
  }
  return Status{StatusCode::kProtocolError, "bad state name: " + name};
}

Result<JobOutcome> UnicoreClient::outcome(const std::string& vsite,
                                          const std::string& job_id) {
  UplRequest request;
  request.op = UplOp::kOutcome;
  request.vsite = vsite;
  request.job_id = job_id;
  auto response = transact(std::move(request));
  if (!response.is_ok()) return response.status();
  if (!response.value().status.is_ok()) return response.value().status;
  if (!response.value().has_outcome) {
    return Status{StatusCode::kProtocolError, "response lacks outcome"};
  }
  return response.value().outcome;
}

Status UnicoreClient::abort(const std::string& vsite,
                            const std::string& job_id) {
  UplRequest request;
  request.op = UplOp::kAbort;
  request.vsite = vsite;
  request.job_id = job_id;
  auto response = transact(std::move(request));
  if (!response.is_ok()) return response.status();
  return response.value().status;
}

Status UnicoreClient::invite(const std::string& vsite,
                             const std::string& job_id,
                             const Certificate& guest) {
  UplRequest request;
  request.op = UplOp::kInvite;
  request.vsite = vsite;
  request.job_id = job_id;
  request.text = guest.subject + '\x1f' + guest.fingerprint;
  auto response = transact(std::move(request));
  if (!response.is_ok()) return response.status();
  return response.value().status;
}

Result<JobOutcome> UnicoreClient::wait(const std::string& vsite,
                                       const std::string& job_id,
                                       Deadline deadline,
                                       common::Duration poll_period) {
  for (;;) {
    auto state = status(vsite, job_id);
    if (!state.is_ok()) return state.status();
    if (state.value() == JobState::kSuccessful ||
        state.value() == JobState::kFailed) {
      return outcome(vsite, job_id);
    }
    if (deadline.has_expired()) {
      return Status{StatusCode::kTimeout, "job still " +
                                              std::string(to_string(
                                                  state.value()))};
    }
    std::this_thread::sleep_for(poll_period);
  }
}

visit::ProxyTransact UnicoreClient::visit_transactor(
    const std::string& vsite, const std::string& job_id) {
  return [this, vsite, job_id](
             common::ByteSpan request) -> Result<common::Bytes> {
    UplRequest upl;
    upl.op = UplOp::kVisit;
    upl.vsite = vsite;
    upl.job_id = job_id;
    upl.binary.assign(request.begin(), request.end());
    auto response = transact(std::move(upl));
    if (!response.is_ok()) return response.status();
    if (!response.value().status.is_ok()) return response.value().status;
    return response.value().binary;
  };
}

}  // namespace cs::unicore
