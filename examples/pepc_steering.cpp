// PEPC steering through UNICORE (paper Fig. 3, section 3).
//
// The Jülich demonstration: the PEPC plasma code runs as a UNICORE batch
// job; the VISIT-UNICORE extension (proxy-server at the TSI, polling
// proxy-client in the UNICORE client) carries the steering session through
// the single-port gateway; two authenticated users view collaboratively and
// hand the master role over; the beam is retargeted live.
//
// Writes pepc_before.ppm / pepc_after.ppm: particles as diamond glyphs plus
// the Morton-decomposition domain boxes ("transparent or solid boxes,
// providing immediate insight into both the physical and algorithmic
// workings of the parallel tree code").
#include <cstdio>
#include <thread>

#include "net/inproc.hpp"
#include "sim/pepc/pepc.hpp"
#include "unicore/client.hpp"
#include "unicore/gateway.hpp"
#include "unicore/njs.hpp"
#include "unicore/tsi.hpp"
#include "viz/render.hpp"
#include "visit/client.hpp"
#include "visit/proxy.hpp"
#include "visit/viewer.hpp"

using namespace std::chrono_literals;
using cs::common::Deadline;

namespace {
constexpr std::uint32_t kTagParticles = 1;
constexpr std::uint32_t kTagDomains = 2;
constexpr std::uint32_t kTagBeamDirection = 10;
constexpr std::uint32_t kTagBeamFire = 11;

/// The PEPC application as registered in the TSI's application database.
cs::common::Status pepc_app(cs::unicore::ExecutionContext& ctx) {
  cs::pepc::PepcConfig config;
  config.target_pairs = 400;
  config.processors = 4;
  cs::pepc::PepcSimulation sim(config);

  cs::visit::SimClientOptions opts;
  opts.server_address = ctx.visit_address;
  opts.password = ctx.visit_password;
  opts.default_timeout = 200ms;
  auto visit = cs::visit::SimClient::connect(*ctx.net, opts, Deadline::after(5s));
  if (!visit.is_ok()) return visit.status();

  const auto particle_desc = cs::pepc::particle_struct_desc();
  const auto domain_desc = cs::pepc::domain_box_struct_desc();
  int pulses_fired = 0;
  for (int step = 0; step < 900 && !ctx.cancelled->load(); ++step) {
    // Pull steering parameters (initiated by the simulation, as always).
    auto direction = visit.value().request<double>(kTagBeamDirection);
    if (direction.is_ok() && direction.value().size() == 3) {
      sim.beam().direction = {direction.value()[0], direction.value()[1],
                              direction.value()[2]};
      sim.beam().origin = -3.0 * normalized(sim.beam().direction);
    }
    auto fire = visit.value().request<std::int32_t>(kTagBeamFire);
    if (fire.is_ok() && !fire.value().empty() &&
        fire.value()[0] > pulses_fired) {
      sim.emit_beam();
      ++pulses_fired;
      *ctx.stdout_text += "pulse " + std::to_string(pulses_fired) +
                          " fired along (" +
                          std::to_string(sim.beam().direction.x) + "," +
                          std::to_string(sim.beam().direction.y) + "," +
                          std::to_string(sim.beam().direction.z) + ")\n";
    }
    sim.step();
    if (step % 5 == 0) {
      (void)visit.value().send_struct(kTagParticles, particle_desc,
                                      sim.particles().data(),
                                      sim.particles().size());
      (void)visit.value().send_struct(kTagDomains, domain_desc,
                                      sim.domains().data(),
                                      sim.domains().size());
    }
    std::this_thread::sleep_for(1ms);
  }
  *ctx.stdout_text +=
      "final particle count " + std::to_string(sim.particles().size()) + "\n";
  visit.value().disconnect();
  return cs::common::Status::ok();
}

/// Renders what a viewer received into a PPM.
void render_view(const std::vector<cs::pepc::Particle>& particles,
                 const std::vector<cs::pepc::DomainBox>& domains,
                 const std::string& path) {
  cs::viz::Renderer renderer(480, 360);
  renderer.clear({8, 8, 20});
  cs::viz::Camera camera;
  camera.look_at({4.5, 3.0, 5.5}, {0, 0, 0}, {0, 1, 0});
  std::vector<cs::viz::ParticleSprite> sprites;
  sprites.reserve(particles.size());
  for (const auto& p : particles) {
    cs::viz::Color color = p.charge > 0
                               ? cs::viz::Color{255, 120, 60}    // ions
                               : cs::viz::Color{120, 180, 255};  // electrons
    sprites.push_back({p.position(), p.velocity(), color});
  }
  renderer.draw_particles(sprites, camera, cs::viz::GlyphStyle::kDiamond, 2);
  for (const auto& b : domains) {
    renderer.draw_box({b.lo[0], b.lo[1], b.lo[2]}, {b.hi[0], b.hi[1], b.hi[2]},
                      camera, {90, 90, 90});
  }
  (void)renderer.frame().write_ppm(path);
}

/// Drains viewer events, keeping the freshest particle/domain snapshot.
struct ViewerState {
  std::vector<cs::pepc::Particle> particles;
  std::vector<cs::pepc::DomainBox> domains;

  void drain(cs::visit::ViewerClient& viewer, cs::common::Duration budget) {
    const auto deadline = Deadline::after(budget);
    while (!deadline.has_expired()) {
      auto event = viewer.poll(Deadline::after(100ms));
      if (!event.is_ok()) continue;
      if (event.value().kind !=
          cs::visit::ViewerClient::Event::Kind::kStructData) {
        continue;
      }
      auto count = viewer.record_count(event.value());
      if (!count.is_ok()) continue;
      if (event.value().tag == kTagParticles) {
        particles.resize(count.value());
        (void)viewer.unpack(event.value(), cs::pepc::particle_struct_desc(),
                            particles.data(), particles.size());
      } else if (event.value().tag == kTagDomains) {
        domains.resize(count.value());
        (void)viewer.unpack(event.value(), cs::pepc::domain_box_struct_desc(),
                            domains.data(), domains.size());
      }
    }
  }
};
}  // namespace

int main() {
  cs::net::InProcNetwork net;

  // --- the Jülich UNICORE installation -----------------------------------
  cs::unicore::TargetSystem tsi{net, {"juelich", 2, 10ms}};
  tsi.register_application("pepc", pepc_app);
  cs::unicore::Njs njs{"juelich", tsi};
  auto gateway = cs::unicore::Gateway::start(net, {"gw:juelich"});
  if (!gateway.is_ok()) return 1;
  gateway.value()->register_vsite(njs);

  const auto paul = cs::unicore::issue_certificate("CN=Paul Gibbon", "k1");
  const auto anke = cs::unicore::issue_certificate("CN=Anke Visser", "k2");
  gateway.value()->trust_store().trust(paul);
  gateway.value()->trust_store().trust(anke);
  njs.uudb().add_mapping(paul, "pgibbon");
  njs.uudb().add_mapping(anke, "avisser");

  // --- submit the steered PEPC job ---------------------------------------
  cs::unicore::UnicoreClient client{net, {"gw:juelich", paul, 5s}};
  const auto ajo = cs::unicore::AjoBuilder("pepc-laser-plasma", "juelich")
                       .start_steering("visit-pw")
                       .execute("pepc")
                       .build();
  auto job = client.submit(ajo);
  if (!job.is_ok()) {
    std::fprintf(stderr, "submit failed: %s\n", job.status().to_string().c_str());
    return 1;
  }
  std::printf("[unicore] consigned %s\n", job.value().c_str());

  // --- attach the steering plugin (polls through the gateway) ------------
  cs::visit::ProxyClient::Options popts;
  popts.poll_period = 10ms;
  auto plugin = cs::visit::ProxyClient::attach(
      client.visit_transactor("juelich", job.value()), popts);
  const auto attach_deadline = Deadline::after(10s);
  while (!plugin.is_ok() && !attach_deadline.has_expired()) {
    std::this_thread::sleep_for(20ms);
    plugin = cs::visit::ProxyClient::attach(
        client.visit_transactor("juelich", job.value()), popts);
  }
  if (!plugin.is_ok()) return 1;
  auto viewer =
      cs::visit::ViewerClient::adopt(plugin.value()->connection(), {"", "", 300ms});
  std::printf("[steerer] attached through the VISIT-UNICORE proxies\n");

  // --- watch the quiescent target, render "before" -----------------------
  ViewerState state;
  state.drain(viewer, 800ms);
  render_view(state.particles, state.domains, "pepc_before.ppm");
  std::printf("[steerer] %zu particles, %zu domains -> pepc_before.ppm\n",
              state.particles.size(), state.domains.size());

  // --- steer: aim the beam along +z and fire two pulses -------------------
  std::printf("[steerer] aiming beam along +z and firing two pulses\n");
  (void)viewer.steer<double>(kTagBeamDirection, {0.0, 0.0, 1.0});
  (void)viewer.steer<std::int32_t>(kTagBeamFire, {1});
  state.drain(viewer, 800ms);
  (void)viewer.steer<std::int32_t>(kTagBeamFire, {2});

  // --- a collaborator joins (after being invited) and takes over ---------
  if (!client.invite("juelich", job.value(), anke).is_ok()) return 1;
  cs::unicore::UnicoreClient anke_client{net, {"gw:juelich", anke, 5s}};
  auto anke_plugin = cs::visit::ProxyClient::attach(
      anke_client.visit_transactor("juelich", job.value()), popts);
  if (anke_plugin.is_ok()) {
    auto anke_viewer = cs::visit::ViewerClient::adopt(
        anke_plugin.value()->connection(), {"", "", 300ms});
    (void)anke_viewer.take_master();
    std::printf("[collab]  second authenticated user joined and took the master role\n");
    ViewerState anke_state;
    anke_state.drain(anke_viewer, 600ms);
    std::printf("[collab]  she sees the same run: %zu particles\n",
                anke_state.particles.size());
  }

  // --- final view ---------------------------------------------------------
  state.drain(viewer, 1200ms);
  render_view(state.particles, state.domains, "pepc_after.ppm");
  std::printf("[steerer] beam visible -> pepc_after.ppm\n");

  // --- let the job finish and fetch the outcome ---------------------------
  (void)client.abort("juelich", job.value());
  auto outcome = client.wait("juelich", job.value(), Deadline::after(15s));
  if (outcome.is_ok()) {
    std::printf("[unicore] job %s\n%s",
                std::string(to_string(outcome.value().state)).c_str(),
                outcome.value().stdout_text.c_str());
  }
  return 0;
}
