// The OGSA steering service (paper Fig. 2).
//
// One SteeringService steers one workflow component — "one service that
// steers the application and another that steers the visualization. In more
// complex workflows there could be more services". The service fronts a
// SteeringBackend (the component's control surface); the RealityGrid-style
// instrumentation API in src/steer implements that backend for simulations,
// and the visualization pipelines implement it for render parameters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ogsa/service.hpp"

namespace cs::ogsa {

/// Control surface a steerable component exposes to its service.
class SteeringBackend {
 public:
  virtual ~SteeringBackend() = default;

  struct ParamInfo {
    std::string name;
    std::string value;
    double min_value = 0.0;
    double max_value = 0.0;
    bool steerable = false;  ///< false: monitored-only
  };

  virtual std::vector<ParamInfo> list_params() const = 0;
  virtual common::Result<std::string> get_param(const std::string& name) const = 0;
  virtual common::Status set_param(const std::string& name,
                                   const std::string& value) = 0;
  /// "pause" | "resume" | "stop" | "checkpoint" | "emit-sample"
  virtual common::Status command(const std::string& command) = 0;
  virtual std::string status() const = 0;
};

class SteeringService : public GridService {
 public:
  /// `component` names what is steered ("application", "visualization") —
  /// it is published as an SDE so clients can pick services by role.
  SteeringService(Handle handle, std::string component,
                  std::shared_ptr<SteeringBackend> backend);

  std::shared_ptr<SteeringBackend> backend() const { return backend_; }

  // Typed API (used by in-process clients).
  std::vector<SteeringBackend::ParamInfo> list_params() const;
  common::Result<std::string> get_param(const std::string& name) const;
  common::Status set_param(const std::string& name, const std::string& value);
  common::Status command(const std::string& command);
  std::string status() const;

  /// Text-RPC vocabulary: list-params | get-param <n> | set-param <n> <v> |
  /// command <c> | status (+ the base find-service-data).
  common::Result<std::string> invoke(
      const std::string& operation,
      const std::vector<std::string>& args) override;

 private:
  std::shared_ptr<SteeringBackend> backend_;
};

}  // namespace cs::ogsa
