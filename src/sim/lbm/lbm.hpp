// Two-component Shan-Chen lattice-Boltzmann fluid.
//
// Reproduces the physics of the paper's RealityGrid demo (section 2.2): two
// fluids on a periodic 3D grid whose *miscibility* is the steered
// parameter. In the Shan-Chen model the inter-component coupling g plays
// that role: g below the critical value keeps the mixture homogeneous,
// g above it drives spinodal decomposition — "as the miscibility parameter
// was altered, the structures formed by the fluids changed", which is what
// the attached visualization renders as isosurfaces of the order parameter.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "sim/lbm/lattice.hpp"

namespace cs::lbm {

struct LbmConfig {
  int nx = 32, ny = 32, nz = 32;
  /// BGK relaxation times of the two components.
  double tau_a = 1.0;
  double tau_b = 1.0;
  /// Shan-Chen inter-component coupling: the (inverse) miscibility knob.
  /// 0 = ideal mixture; beyond ~1.0 (at rho ~ 1) the fluids demix.
  double coupling = 0.0;
  /// Mean density of each component.
  double rho0 = 0.5;
  /// Amplitude of the initial density perturbation.
  double noise = 0.01;
  std::uint64_t seed = 1;
};

class TwoFluidLbm {
 public:
  explicit TwoFluidLbm(const LbmConfig& config);

  /// One collide-stream step. The coupling may be changed between calls
  /// (that is the steering).
  void step();

  void set_coupling(double g) noexcept { config_.coupling = g; }
  double coupling() const noexcept { return config_.coupling; }
  const LbmConfig& config() const noexcept { return config_; }
  const Grid& grid() const noexcept { return grid_; }
  std::uint64_t steps_done() const noexcept { return steps_; }

  // ---- observables ------------------------------------------------------

  /// Total mass of each component (exactly conserved by the scheme).
  double mass_a() const;
  double mass_b() const;

  /// Order parameter phi = (rho_a - rho_b) / (rho_a + rho_b) per cell.
  std::vector<float> order_parameter() const;

  /// Degree of demixing: <|phi|> in [0, 1]. ~0 mixed, -> 1 fully separated.
  double segregation() const;

  /// Number of neighbor pairs (6-neighborhood) straddling the phi=0
  /// interface — proportional to interface area. Drops as domains coarsen.
  std::uint64_t interface_links() const;

  /// Per-component densities (for rendering / tests).
  const std::vector<double>& rho_a() const noexcept { return rho_a_; }
  const std::vector<double>& rho_b() const noexcept { return rho_b_; }

  // ---- checkpoint support (sim/lbm/checkpoint.hpp) ----------------------

  /// Raw distribution functions (cell-major, kQ per cell).
  const std::vector<double>& distributions_a() const noexcept { return f_a_; }
  const std::vector<double>& distributions_b() const noexcept { return f_b_; }

  /// Replaces the full state; sizes must match the grid. Densities are
  /// recomputed. Used by restore() — the restored run is bit-identical.
  common::Status set_state(std::vector<double> f_a, std::vector<double> f_b,
                           std::uint64_t steps_done);

 private:
  void compute_densities();

  LbmConfig config_;
  Grid grid_;
  // Distribution functions, layout: cell-major [cell * kQ + q].
  std::vector<double> f_a_, f_b_;
  std::vector<double> buf_;          // streaming scratch
  std::vector<double> rho_a_, rho_b_;
  std::vector<double> mom_a_, mom_b_;  // per-cell momentum (3 per cell)
  std::uint64_t steps_ = 0;
};

}  // namespace cs::lbm
