// Fault-injection transport (net::FaultNetwork) and supervised dialing
// (net::Reconnector): the chaos substrate must itself be trustworthy —
// deterministic for a fixed seed, precise about when a fault fires, and
// honest about what the peer observes — or every chaos soak built on it
// measures noise.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/fault.hpp"
#include "net/inproc.hpp"
#include "net/reconnect.hpp"
#include "net/transport.hpp"
#include "util.hpp"

namespace cs::net {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::Status;
using common::StatusCode;
using testutil::bytes_of;
using testutil::text_of;

/// Listener + an accept drain so faulted dials always find a peer.
struct Echoless {
  InProcNetwork net;
  ListenerPtr listener;
  std::vector<ConnectionPtr> accepted;

  explicit Echoless(const std::string& address) {
    listener = net.listen(address).value();
  }
  void accept_one() {
    accepted.push_back(listener->accept(Deadline::after(2s)).value());
  }
};

FaultPlan close_after(std::uint64_t ops, std::uint64_t jitter = 0,
                      std::uint64_t seed = 1) {
  FaultPlan plan;
  plan.seed = seed;
  Fault fault;
  fault.kind = FaultKind::kClose;
  fault.after_ops = ops;
  fault.after_ops_jitter = jitter;
  plan.faults.push_back(fault);
  return plan;
}

TEST(FaultNetwork, CloseFiresAfterExactOpThreshold) {
  Echoless peer("fault:close");
  FaultNetwork chaos(peer.net, close_after(3));
  auto conn = chaos.connect("fault:close", Deadline::after(1s));
  ASSERT_TRUE(conn.is_ok());
  peer.accept_one();

  // after_ops = 3 lets exactly three ops through clean; the fourth observes
  // the fired fault and dies.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(conn.value()->send(bytes_of("ok"), Deadline::after(1s)).is_ok())
        << "op " << i;
  }
  const Status s = conn.value()->send(bytes_of("doomed"), Deadline::after(1s));
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kClosed);
  EXPECT_FALSE(conn.value()->is_open());

  const FaultStats stats = chaos.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.faults_fired, 1u);
  EXPECT_EQ(stats.closes, 1u);
}

TEST(FaultNetwork, SameSeedInjectsIdenticalSchedule) {
  // Two independent networks with the same seeded plan: each connection's
  // clean-op count before the injected close must match by ordinal. A
  // different seed must produce a different schedule (jitter of 64 over 8
  // connections makes an accidental full match astronomically unlikely).
  const auto schedule_of = [](std::uint64_t seed) {
    Echoless peer("fault:seed");
    FaultNetwork chaos(peer.net, close_after(16, 64, seed));
    std::vector<std::uint64_t> clean_ops;
    for (int c = 0; c < 8; ++c) {
      auto conn = chaos.connect("fault:seed", Deadline::after(1s));
      EXPECT_TRUE(conn.is_ok());
      peer.accept_one();
      std::uint64_t ops = 0;
      while (conn.value()->send(bytes_of("x"), Deadline::after(1s)).is_ok()) {
        ++ops;
      }
      clean_ops.push_back(ops);
    }
    return clean_ops;
  };
  const auto first = schedule_of(42);
  const auto second = schedule_of(42);
  const auto other = schedule_of(43);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST(FaultNetwork, MaxFaultedConnectionsCapsTheBlastRadius) {
  Echoless peer("fault:cap");
  FaultPlan plan = close_after(0);
  plan.max_faulted_connections = 1;
  FaultNetwork chaos(peer.net, plan);

  auto first = chaos.connect("fault:cap", Deadline::after(1s));
  ASSERT_TRUE(first.is_ok());
  peer.accept_one();
  EXPECT_EQ(first.value()
                ->send(bytes_of("dead on arrival"), Deadline::after(1s))
                .code(),
            StatusCode::kClosed);

  // Ordinal 1 is past the cap: it passes through unwrapped and lives.
  auto second = chaos.connect("fault:cap", Deadline::after(1s));
  ASSERT_TRUE(second.is_ok());
  peer.accept_one();
  EXPECT_TRUE(
      second.value()->send(bytes_of("alive"), Deadline::after(1s)).is_ok());
  EXPECT_EQ(chaos.stats().connections, 1u);
}

TEST(FaultNetwork, PartitionSendLeavesAnOpenSilentPeer) {
  Echoless peer("fault:part");
  FaultPlan plan;
  Fault fault;
  fault.kind = FaultKind::kPartitionSend;
  plan.faults.push_back(fault);
  FaultNetwork chaos(peer.net, plan);
  auto conn = chaos.connect("fault:part", Deadline::after(1s));
  ASSERT_TRUE(conn.is_ok());
  peer.accept_one();

  // The sender believes its traffic left; the peer sees only silence on an
  // open connection — the exact shape heartbeat liveness exists to catch.
  ASSERT_TRUE(
      conn.value()->send(bytes_of("into the void"), Deadline::after(1s))
          .is_ok());
  EXPECT_TRUE(conn.value()->is_open());
  auto got = peer.accepted.front()->recv(Deadline::after(100ms));
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(chaos.stats().dropped_messages, 1u);
}

TEST(FaultNetwork, FlapClearsAfterItsOpWindow) {
  Echoless peer("fault:flap");
  FaultPlan plan;
  Fault fault;
  fault.kind = FaultKind::kPartitionSend;
  fault.for_ops = 2;  // ops 0 and 1 vanish, op 2 goes through
  plan.faults.push_back(fault);
  FaultNetwork chaos(peer.net, plan);
  auto conn = chaos.connect("fault:flap", Deadline::after(1s));
  ASSERT_TRUE(conn.is_ok());
  peer.accept_one();

  for (const char* msg : {"m0", "m1", "m2"}) {
    ASSERT_TRUE(conn.value()->send(bytes_of(msg), Deadline::after(1s)).is_ok());
  }
  auto got = peer.accepted.front()->recv(Deadline::after(1s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(text_of(got.value()), "m2");
  EXPECT_EQ(chaos.stats().dropped_messages, 2u);
}

TEST(FaultNetwork, DelayIsBoundedByTheDeadline) {
  Echoless peer("fault:delay");
  FaultPlan plan;
  Fault fault;
  fault.kind = FaultKind::kDelay;
  fault.delay = 50ms;
  plan.faults.push_back(fault);
  FaultNetwork chaos(peer.net, plan);
  auto conn = chaos.connect("fault:delay", Deadline::after(1s));
  ASSERT_TRUE(conn.is_ok());
  peer.accept_one();

  const auto before = common::Clock::now();
  ASSERT_TRUE(
      conn.value()->send(bytes_of("slow"), Deadline::after(1s)).is_ok());
  EXPECT_GE(common::Clock::now() - before, 45ms);

  // A delay the deadline cannot absorb must fail as a timeout, not sleep
  // through the caller's budget.
  const Status s = conn.value()->send(bytes_of("x"), Deadline::after(5ms));
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

TEST(FaultNetwork, ShortWriteTruncatesBatchWithoutCorruption) {
  Echoless peer("fault:short");
  FaultPlan plan;
  Fault fault;
  fault.kind = FaultKind::kShortWrite;
  plan.faults.push_back(fault);
  FaultNetwork chaos(peer.net, plan);
  auto conn = chaos.connect("fault:short", Deadline::after(1s));
  ASSERT_TRUE(conn.is_ok());
  peer.accept_one();

  const common::Bytes a = bytes_of("first");
  const common::Bytes b = bytes_of("second");
  const common::Bytes c = bytes_of("third");
  const common::ByteSpan batch[] = {common::ByteSpan(a), common::ByteSpan(b),
                                    common::ByteSpan(c)};
  std::size_t sent = 0;
  const Status s = conn.value()->send_many(batch, Deadline::after(1s), sent);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(sent, 1u);  // partial progress is reported, never lied about
  // What did land is a whole message, not a torn frame.
  auto got = peer.accepted.front()->recv(Deadline::after(1s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(text_of(got.value()), "first");
  EXPECT_EQ(chaos.stats().short_writes, 1u);
}

TEST(FaultNetwork, AcceptPlanFaultsTheServedSideOnly) {
  InProcNetwork net;
  FaultNetwork chaos(net, /*dial_plan=*/{}, close_after(0));
  auto listener = chaos.listen("fault:accept");
  ASSERT_TRUE(listener.is_ok());
  auto client = net.connect("fault:accept", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  auto served = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(served.is_ok());

  // The accepted side dies on its first op; the dialing side was produced
  // by the clean inner network and only observes the close.
  EXPECT_EQ(served.value()->send(bytes_of("x"), Deadline::after(1s)).code(),
            StatusCode::kClosed);
  auto got = client.value()->recv(Deadline::after(1s));
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kClosed);
}

TEST(FaultNetwork, FaultedConnectionsOptOutOfReadiness) {
  Echoless peer("fault:handle");
  FaultNetwork chaos(peer.net, close_after(100));
  auto conn = chaos.connect("fault:handle", Deadline::after(1s));
  ASSERT_TRUE(conn.is_ok());
  // A fault schedule cannot honor kernel-accurate readiness; hosts must see
  // no native handle and take their fallback paths.
  EXPECT_LT(conn.value()->native_handle(), 0);
}

// -------------------------------------------------------------- Reconnector

TEST(Reconnector, RetriableCodesAreTheNotUpYetOnes) {
  EXPECT_TRUE(Reconnector::retriable(StatusCode::kNotFound));
  EXPECT_TRUE(Reconnector::retriable(StatusCode::kTimeout));
  EXPECT_TRUE(Reconnector::retriable(StatusCode::kUnavailable));
  EXPECT_FALSE(Reconnector::retriable(StatusCode::kPermissionDenied));
  EXPECT_FALSE(Reconnector::retriable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(Reconnector::retriable(StatusCode::kClosed));
}

TEST(Reconnector, DialOutlastsALateListener) {
  InProcNetwork net;
  std::thread late([&net] {
    std::this_thread::sleep_for(60ms);
    auto listener = net.listen("recon:late");
    ASSERT_TRUE(listener.is_ok());
    ASSERT_TRUE(listener.value()->accept(Deadline::after(2s)).is_ok());
  });
  Reconnector reconnector;
  auto conn = reconnector.dial(net, "recon:late", Deadline::after(2s));
  EXPECT_TRUE(conn.is_ok());
  late.join();

  const Reconnector::Stats stats = reconnector.stats();
  EXPECT_GE(stats.attempts, 2u);  // at least one miss before the listener
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(Reconnector, DeadlineBoundsAFailedDial) {
  InProcNetwork net;
  Reconnector reconnector;
  const auto before = common::Clock::now();
  auto conn = reconnector.dial(net, "recon:never", Deadline::after(120ms));
  const auto elapsed = common::Clock::now() - before;
  ASSERT_FALSE(conn.is_ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kNotFound);
  EXPECT_GE(elapsed, 100ms);  // kept trying until the deadline
  EXPECT_LT(elapsed, 2s);     // and not a moment longer than the backoff cap

  const Reconnector::Stats stats = reconnector.stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_EQ(stats.successes, 0u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST(Reconnector, FreeFunctionKeepsTheHistoricalShape) {
  InProcNetwork net;
  auto listener = net.listen("recon:free");
  ASSERT_TRUE(listener.is_ok());
  auto conn = connect_retry(net, "recon:free", Deadline::after(1s));
  EXPECT_TRUE(conn.is_ok());
}

}  // namespace
}  // namespace cs::net
