#include "net/inproc.hpp"

#include <algorithm>
#include <cassert>

namespace cs::net {

using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace detail {

// ---------------------------------------------------------------------------
// Mailbox: one direction of a connection (or one member's multicast inbox).
// ---------------------------------------------------------------------------

struct Mailbox {
  explicit Mailbox(std::size_t capacity, LinkModel link, std::uint64_t seed)
      : capacity_bytes(capacity), scheduler(link, seed) {}

  struct Item {
    common::TimePoint deliver_at;
    /// Unicast payload, owned exclusively (no extra indirection on the
    /// connection hot path).
    Bytes owned;
    /// Multicast payload: one immutable buffer shared by every member's
    /// inbox instead of a deep copy per member. Null for unicast items.
    std::shared_ptr<Bytes> shared;

    std::size_t size() const noexcept {
      return shared ? shared->size() : owned.size();
    }
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Item> queue;
  std::size_t queued_bytes = 0;
  const std::size_t capacity_bytes;
  bool closed = false;
  LinkScheduler scheduler;

  /// Sender side: applies backpressure, the link model, then enqueues one
  /// exclusively-owned copy (the unicast connection path).
  Status push(ByteSpan message, Deadline deadline) {
    std::unique_lock lock(mutex);
    if (Status s = admit(lock, message.size(), deadline); !s.is_ok()) return s;
    common::TimePoint deliver_at;
    if (!scheduler.schedule(message.size(), deliver_at)) {
      return Status::ok();  // dropped by the link model: fire-and-forget
    }
    queued_bytes += message.size();
    queue.push_back(
        Item{deliver_at, Bytes{message.begin(), message.end()}, nullptr});
    cv.notify_all();
    return Status::ok();
  }

  /// push() for a buffer already shared across receivers (multicast fan-out
  /// — copy once, enqueue everywhere). Receivers never mutate a payload
  /// they do not own exclusively.
  Status push_shared(std::shared_ptr<Bytes> message, Deadline deadline) {
    std::unique_lock lock(mutex);
    if (Status s = admit(lock, message->size(), deadline); !s.is_ok()) {
      return s;
    }
    common::TimePoint deliver_at;
    if (!scheduler.schedule(message->size(), deliver_at)) {
      return Status::ok();  // dropped by the link model: fire-and-forget
    }
    queued_bytes += message->size();
    queue.push_back(Item{deliver_at, Bytes{}, std::move(message)});
    cv.notify_all();
    return Status::ok();
  }

  /// Backpressure half of a push: waits for window room under `lock`.
  Status admit(std::unique_lock<std::mutex>& lock, std::size_t size,
               Deadline deadline) {
    const auto fits = [&] {
      return closed || queued_bytes + size <= capacity_bytes;
    };
    if (!fits()) {
      if (deadline.is_infinite()) {
        cv.wait(lock, fits);
      } else if (!cv.wait_until(lock, deadline.time_point(), fits)) {
        return Status{StatusCode::kTimeout, "receive window full"};
      }
    }
    if (closed) return Status{StatusCode::kClosed, "mailbox closed"};
    return Status::ok();
  }

  /// Receiver side: waits for the head message to exist *and* to have
  /// traversed the modelled link.
  Result<Bytes> pop(Deadline deadline) {
    std::unique_lock lock(mutex);
    for (;;) {
      if (!queue.empty()) {
        const auto ready_at = queue.front().deliver_at;
        const auto now = common::Clock::now();
        if (now >= ready_at) {
          Item item = std::move(queue.front());
          queued_bytes -= item.size();
          queue.pop_front();
          cv.notify_all();
          if (!item.shared) return std::move(item.owned);
          // Fan-out members each copy out of the one shared buffer.
          // (Stealing it when this is the last reference would need a
          // synchronized refcount observation — use_count() is a relaxed
          // load, so a sibling's concurrent release does not order its
          // reads before our move.)
          return Bytes{*item.shared};
        }
        // Head-of-line message still "in flight": wait for its arrival or
        // the caller's deadline, whichever is first.
        if (!deadline.is_infinite() && deadline.time_point() <= now) {
          return Status{StatusCode::kTimeout, "no message before deadline"};
        }
        const auto wake = deadline.is_infinite()
                              ? ready_at
                              : std::min(ready_at, deadline.time_point());
        cv.wait_until(lock, wake);
        continue;
      }
      if (closed) return Status{StatusCode::kClosed, "peer closed"};
      if (deadline.is_infinite()) {
        cv.wait(lock);
      } else if (cv.wait_until(lock, deadline.time_point()) ==
                     std::cv_status::timeout &&
                 queue.empty() && !closed) {
        return Status{StatusCode::kTimeout, "no message before deadline"};
      }
    }
  }

  void close() {
    std::scoped_lock lock(mutex);
    closed = true;
    cv.notify_all();
  }
};

// ---------------------------------------------------------------------------
// InProcConnection
// ---------------------------------------------------------------------------

class InProcConnection : public Connection {
 public:
  InProcConnection(std::shared_ptr<Mailbox> rx, std::shared_ptr<Mailbox> tx,
                   std::string peer)
      : rx_(std::move(rx)), tx_(std::move(tx)), peer_(std::move(peer)) {}

  ~InProcConnection() override { close(); }

  Status send(ByteSpan message, Deadline deadline) override {
    if (!open_.load(std::memory_order_acquire)) {
      return Status{StatusCode::kClosed, "connection closed"};
    }
    Status s = tx_->push(message, deadline);
    if (s.is_ok()) {
      messages_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(message.size(), std::memory_order_relaxed);
    }
    return s;
  }

  Result<Bytes> recv(Deadline deadline) override {
    Result<Bytes> r = rx_->pop(deadline);
    if (r.is_ok()) {
      messages_received_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(r.value().size(), std::memory_order_relaxed);
    }
    return r;
  }

  void close() override {
    if (open_.exchange(false, std::memory_order_acq_rel)) {
      rx_->close();
      tx_->close();
    }
  }

  bool is_open() const override { return open_.load(std::memory_order_acquire); }

  std::string peer_address() const override { return peer_; }

  ConnStats stats() const override {
    return ConnStats{messages_sent_.load(), bytes_sent_.load(),
                     messages_received_.load(), bytes_received_.load()};
  }

 private:
  std::shared_ptr<Mailbox> rx_;
  std::shared_ptr<Mailbox> tx_;
  std::string peer_;
  std::atomic<bool> open_{true};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

// ---------------------------------------------------------------------------
// InProcListener
// ---------------------------------------------------------------------------

class InProcListener : public Listener {
 public:
  InProcListener(InProcNetwork* net, std::string address)
      : net_(net), address_(std::move(address)) {}

  ~InProcListener() override { close(); }

  Result<ConnectionPtr> accept(Deadline deadline) override {
    std::unique_lock lock(mutex_);
    const auto ready = [&] { return closed_ || !backlog_.empty(); };
    if (!ready()) {
      if (deadline.is_infinite()) {
        cv_.wait(lock, ready);
      } else if (!cv_.wait_until(lock, deadline.time_point(), ready)) {
        return Status{StatusCode::kTimeout, "no inbound connection"};
      }
    }
    if (!backlog_.empty()) {
      ConnectionPtr conn = std::move(backlog_.front());
      backlog_.pop_front();
      cv_.notify_all();
      return conn;
    }
    return Status{StatusCode::kClosed, "listener closed"};
  }

  void close() override {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return;
      closed_ = true;
      for (auto& conn : backlog_) conn->close();
      backlog_.clear();
      cv_.notify_all();
    }
    net_->unregister_listener(address_);
  }

  std::string address() const override { return address_; }

  /// Called by InProcNetwork::connect with the server-side endpoint.
  Status offer(ConnectionPtr server_side, Deadline deadline) {
    std::unique_lock lock(mutex_);
    constexpr std::size_t kBacklogLimit = 128;
    const auto has_room = [&] {
      return closed_ || backlog_.size() < kBacklogLimit;
    };
    if (!has_room()) {
      if (deadline.is_infinite()) {
        cv_.wait(lock, has_room);
      } else if (!cv_.wait_until(lock, deadline.time_point(), has_room)) {
        return Status{StatusCode::kTimeout, "listener backlog full"};
      }
    }
    if (closed_) return Status{StatusCode::kClosed, "listener closed"};
    backlog_.push_back(std::move(server_side));
    cv_.notify_all();
    return Status::ok();
  }

 private:
  InProcNetwork* net_;
  std::string address_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ConnectionPtr> backlog_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// Multicast
// ---------------------------------------------------------------------------

struct MulticastMember {
  std::uint64_t id;
  std::shared_ptr<Mailbox> inbox;
};

struct MulticastGroupState {
  std::mutex mutex;
  std::vector<MulticastMember> members;
  std::atomic<std::uint64_t> next_member_id{1};
};

}  // namespace detail

// ---------------------------------------------------------------------------
// MulticastSocket
// ---------------------------------------------------------------------------

MulticastSocket::MulticastSocket(
    std::string group, std::shared_ptr<detail::MulticastGroupState> state,
    std::uint64_t member_id)
    : group_(std::move(group)), state_(std::move(state)), member_id_(member_id) {}

MulticastSocket::~MulticastSocket() { leave(); }

Status MulticastSocket::send(ByteSpan message, Deadline deadline) {
  if (!state_) return Status{StatusCode::kClosed, "socket left the group"};
  std::vector<std::shared_ptr<detail::Mailbox>> targets;
  {
    std::scoped_lock lock(state_->mutex);
    targets.reserve(state_->members.size());
    for (const auto& m : state_->members) {
      if (m.id != member_id_) targets.push_back(m.inbox);
    }
  }
  // Best-effort fan-out, UDP-multicast style: a full/slow member does not
  // block the others (the paper's passive viewers must never stall the
  // steerer). A member whose window is full simply misses the message.
  // The datagram is copied once and shared by every inbox, not copied per
  // member (the encode-once idea from common::FramePtr).
  auto shared = std::make_shared<Bytes>(message.begin(), message.end());
  for (auto& inbox : targets) {
    (void)inbox->push_shared(shared, Deadline::expired());
    (void)deadline;
  }
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(message.size(), std::memory_order_relaxed);
  return Status::ok();
}

Result<Bytes> MulticastSocket::recv(Deadline deadline) {
  if (!state_) return Status{StatusCode::kClosed, "socket left the group"};
  std::shared_ptr<detail::Mailbox> inbox;
  {
    std::scoped_lock lock(state_->mutex);
    for (const auto& m : state_->members) {
      if (m.id == member_id_) inbox = m.inbox;
    }
  }
  if (!inbox) return Status{StatusCode::kClosed, "socket left the group"};
  Result<Bytes> r = inbox->pop(deadline);
  if (r.is_ok()) {
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(r.value().size(), std::memory_order_relaxed);
  }
  return r;
}

void MulticastSocket::leave() {
  if (!state_) return;
  std::scoped_lock lock(state_->mutex);
  std::erase_if(state_->members,
                [&](const auto& m) { return m.id == member_id_; });
  state_.reset();
}

bool MulticastSocket::is_member() const noexcept { return state_ != nullptr; }

ConnStats MulticastSocket::stats() const {
  return ConnStats{messages_sent_.load(), bytes_sent_.load(),
                   messages_received_.load(), bytes_received_.load()};
}

// ---------------------------------------------------------------------------
// InProcNetwork
// ---------------------------------------------------------------------------

InProcNetwork::InProcNetwork() = default;
InProcNetwork::~InProcNetwork() = default;

Result<ListenerPtr> InProcNetwork::listen(const std::string& address) {
  std::scoped_lock lock(mutex_);
  if (listeners_.contains(address)) {
    return Status{StatusCode::kAlreadyExists, "address in use: " + address};
  }
  auto listener = std::make_unique<detail::InProcListener>(this, address);
  listeners_[address] = listener.get();
  return ListenerPtr{std::move(listener)};
}

void InProcNetwork::unregister_listener(const std::string& address) {
  std::scoped_lock lock(mutex_);
  listeners_.erase(address);
}

Result<ConnectionPtr> InProcNetwork::connect(const std::string& address,
                                             Deadline deadline) {
  ConnectOptions options;
  {
    std::scoped_lock lock(mutex_);
    options.link = default_link_;
  }
  return connect(address, deadline, options);
}

Result<ConnectionPtr> InProcNetwork::connect(const std::string& address,
                                             Deadline deadline,
                                             const ConnectOptions& options) {
  detail::InProcListener* listener = nullptr;
  {
    std::scoped_lock lock(mutex_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return Status{StatusCode::kNotFound, "no listener at " + address};
    }
    listener = it->second;
  }
  const std::uint64_t id = next_conn_id_.fetch_add(1);
  const std::uint64_t seed = jitter_seed_.fetch_add(2);
  auto client_to_server = std::make_shared<detail::Mailbox>(
      options.recv_capacity_bytes, options.link, seed);
  auto server_to_client = std::make_shared<detail::Mailbox>(
      options.recv_capacity_bytes, options.link, seed + 1);
  auto client_side = std::make_shared<detail::InProcConnection>(
      server_to_client, client_to_server, address);
  auto server_side = std::make_shared<detail::InProcConnection>(
      client_to_server, server_to_client,
      address + "#client" + std::to_string(id));
  Status s = listener->offer(std::move(server_side), deadline);
  if (!s.is_ok()) return s;
  return ConnectionPtr{std::move(client_side)};
}

void InProcNetwork::set_default_link(LinkModel link) {
  std::scoped_lock lock(mutex_);
  default_link_ = link;
}

Result<MulticastSocketPtr> InProcNetwork::join_group(const std::string& group,
                                                     const LinkModel& link) {
  std::shared_ptr<detail::MulticastGroupState> state;
  {
    std::scoped_lock lock(mutex_);
    auto& slot = groups_[group];
    if (!slot) slot = std::make_shared<detail::MulticastGroupState>();
    state = slot;
  }
  const std::uint64_t id = state->next_member_id.fetch_add(1);
  auto inbox = std::make_shared<detail::Mailbox>(
      std::size_t{64} << 20, link, jitter_seed_.fetch_add(1));
  {
    std::scoped_lock lock(state->mutex);
    state->members.push_back(detail::MulticastMember{id, std::move(inbox)});
  }
  return MulticastSocketPtr{new MulticastSocket(group, state, id)};
}

std::size_t InProcNetwork::group_size(const std::string& group) const {
  std::shared_ptr<detail::MulticastGroupState> state;
  {
    std::scoped_lock lock(mutex_);
    auto it = groups_.find(group);
    if (it == groups_.end()) return 0;
    state = it->second;
  }
  std::scoped_lock lock(state->mutex);
  return state->members.size();
}

}  // namespace cs::net
