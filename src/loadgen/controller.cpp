#include "loadgen/controller.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/endpoint.hpp"

namespace cs::loadgen {

using common::Bytes;
using common::Deadline;
using common::Duration;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

double ns_to_us(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) / 1000.0;
}

Status unavailable(std::string what) {
  return Status{StatusCode::kUnavailable, std::move(what)};
}

}  // namespace

Controller::Controller(net::Network& net, Options options)
    : net_(net), options_(std::move(options)) {}

Result<std::unique_ptr<Controller>> Controller::start(net::Network& net,
                                                      const Options& options) {
  if (options.workers == 0) {
    return Status{StatusCode::kInvalidArgument, "workers must be >= 1"};
  }
  auto listener = net.listen(options.listen_address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<Controller> controller{new Controller(net, options)};
  controller->listener_ = std::move(listener).value();
  controller->address_ = controller->listener_->address();
  Controller* self = controller.get();
  controller->pump_ = std::make_unique<net::AcceptPump>(
      *controller->listener_,
      [self](net::ConnectionPtr conn) { self->on_conn(std::move(conn)); });
  return controller;
}

Controller::~Controller() { stop(); }

void Controller::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (pump_) pump_->stop();
  std::vector<net::ConnectionPtr> conns;
  {
    std::scoped_lock lock(mutex_);
    for (auto& conn : pending_) conns.push_back(std::move(conn));
    pending_.clear();
    for (auto& slot : slots_) {
      if (slot.conn) conns.push_back(std::move(slot.conn));
    }
    pending_cv_.notify_all();
    rejoin_cv_.notify_all();
  }
  for (auto& conn : conns) conn->close();
}

void Controller::on_conn(net::ConnectionPtr conn) {
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {
    conn->close();
    return;
  }
  pending_.push_back(std::move(conn));
  pending_cv_.notify_all();
}

Status Controller::await_workers() {
  const Deadline deadline = Deadline::after(options_.join_timeout);
  for (;;) {
    {
      std::scoped_lock lock(mutex_);
      if (slots_.size() >= options_.workers) return Status::ok();
    }
    net::ConnectionPtr conn;
    {
      std::unique_lock lock(mutex_);
      if (!pending_cv_.wait_until(lock, deadline.time_point(), [&] {
            return !pending_.empty() || stopped_.load();
          })) {
        return unavailable("fleet incomplete: " +
                           std::to_string(slots_.size()) + " of " +
                           std::to_string(options_.workers) +
                           " workers joined by the deadline");
      }
      if (stopped_.load()) return unavailable("controller stopped");
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    // JOIN handshake off the lock: a worker that stalls here must not
    // block later arrivals from being accepted (only from being joined —
    // the fleet joins serially, bounded by io_timeout each).
    auto raw = conn->recv(
        Deadline{std::min(Deadline::after(options_.io_timeout).time_point(),
                          deadline.time_point())});
    if (!raw.is_ok()) {
      conn->close();
      continue;
    }
    auto join = decode_join(raw.value());
    if (!join.or_log("loadgen.controller")) {
      conn->close();
      continue;
    }
    std::scoped_lock lock(mutex_);
    WorkerSlot slot;
    slot.conn = std::move(conn);
    slot.name = join.value().worker_name;
    slot.metricsz_address = join.value().metricsz_address;
    slot.alive = true;
    slots_.push_back(std::move(slot));
  }
}

std::size_t Controller::live_workers() const {
  std::scoped_lock lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const WorkerSlot& s) { return s.alive; }));
}

Result<Bytes> Controller::recv_frame(net::Connection& conn, ControlOp want,
                                     Deadline deadline) {
  while (!deadline.has_expired()) {
    auto raw = conn.recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto op = decode_control_op(raw.value());
    if (!op.is_ok()) return op.status();
    if (op.value() == want) return raw;
    // Anything else out of protocol order is tolerated and skipped (a
    // leftover READY racing a slow collect, say) — the deadline still
    // bounds the whole wait.
  }
  return Status{StatusCode::kTimeout, "control frame deadline"};
}

Status Controller::assign(const std::vector<WorkloadSpec>& specs) {
  std::vector<WorkerSlot*> fleet;
  {
    std::scoped_lock lock(mutex_);
    if (specs.size() != slots_.size()) {
      return Status{StatusCode::kInvalidArgument,
                    "spec count != joined worker count"};
    }
    for (auto& slot : slots_) fleet.push_back(&slot);
  }
  // Ship every assignment first, then await the READYs: workers prepare
  // (open their connection fleets) concurrently, not one after another.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (!fleet[i]->alive) continue;
    if (!fleet[i]
             ->conn->send(encode_assign(specs[i]),
                          Deadline::after(options_.io_timeout))
             .or_log("loadgen.controller")) {
      fleet[i]->alive = false;
      fleet[i]->conn->close();
    }
  }
  const Deadline ready_deadline = Deadline::after(options_.ready_timeout);
  bool all_ready = true;
  for (auto* slot : fleet) {
    if (!slot->alive) {
      all_ready = false;
      continue;
    }
    auto frame = recv_frame(*slot->conn, ControlOp::kReady, ready_deadline);
    if (!frame.is_ok() || !decode_ready(frame.value()).is_ok()) {
      slot->alive = false;
      slot->conn->close();
      all_ready = false;
    }
  }
  return all_ready ? Status::ok()
                   : unavailable("not every worker reached ready");
}

Status Controller::start_run() {
  std::size_t started = 0;
  std::scoped_lock lock(mutex_);
  for (auto& slot : slots_) {
    if (!slot.alive) continue;
    if (slot.conn->send(encode_start(), Deadline::after(options_.io_timeout))
            .or_log("loadgen.controller")) {
      ++started;
    } else {
      slot.alive = false;
      slot.conn->close();
    }
  }
  return started > 0 ? Status::ok() : unavailable("no workers left to start");
}

Report Controller::collect(Deadline deadline) {
  std::vector<WorkerSlot*> fleet;
  {
    std::scoped_lock lock(mutex_);
    for (auto& slot : slots_) fleet.push_back(&slot);
  }
  // One gatherer thread per live worker, all bounded by the same absolute
  // deadline: a worker that never reports costs exactly the deadline, and
  // costs it in parallel — it cannot starve a sibling whose shard is
  // already sitting in the receive buffer. A dropped connection is a
  // degradation, not a loss: the gatherer parks on rejoin_cv_ and retries
  // when the readmission loop below swaps a fresh conn into the slot.
  std::atomic<std::uint64_t> rejoins{0};
  std::atomic<bool> gather_done{false};
  std::vector<std::thread> gatherers;
  gatherers.reserve(fleet.size());
  for (auto* slot : fleet) {
    if (!slot->alive) continue;
    gatherers.emplace_back([this, slot, deadline] {
      for (;;) {
        net::ConnectionPtr conn;
        std::uint64_t gen;
        {
          std::scoped_lock lock(mutex_);
          conn = slot->conn;
          gen = slot->generation;
        }
        auto frame = recv_frame(*conn, ControlOp::kResult, deadline);
        if (frame.is_ok()) {
          auto result = decode_result(frame.value());
          if (!result.or_log("loadgen.controller")) {
            // Garbage on the control stream is a protocol failure, not a
            // flap — the slot is lost for good.
            std::scoped_lock lock(mutex_);
            slot->alive = false;
            conn->close();
            return;
          }
          std::scoped_lock lock(mutex_);
          slot->result = std::move(result).value();
          slot->reported = true;
          return;
        }
        conn->close();
        std::unique_lock lock(mutex_);
        slot->alive = false;
        slot->degraded = true;
        // Only a dropped connection earns a readmission window; a timeout
        // means the collect deadline itself expired.
        if (frame.status().code() != StatusCode::kClosed) return;
        if (!rejoin_cv_.wait_until(lock, deadline.time_point(), [&] {
              return slot->generation != gen || stopped_.load();
            })) {
          return;  // never came back: lost
        }
        if (stopped_.load()) return;
        // Readmitted: go around and recv on the fresh connection.
      }
    });
  }

  // Readmission loop: accepted connections landing in pending_ during
  // collect are re-JOINing workers. Match by name against a degraded,
  // unreported slot and swap the fresh conn in; anything else is closed.
  std::thread readmitter([this, &fleet, &rejoins, &gather_done, deadline] {
    for (;;) {
      net::ConnectionPtr conn;
      {
        std::unique_lock lock(mutex_);
        if (!pending_cv_.wait_until(lock, deadline.time_point(), [&] {
              return !pending_.empty() || stopped_.load() ||
                     gather_done.load();
            })) {
          return;  // collect deadline: readmission window over
        }
        if (stopped_.load() || gather_done.load()) return;
        conn = std::move(pending_.front());
        pending_.pop_front();
      }
      // JOIN handshake off the lock, same shape as await_workers().
      auto raw = conn->recv(
          Deadline{std::min(Deadline::after(options_.io_timeout).time_point(),
                            deadline.time_point())});
      if (!raw.is_ok()) {
        conn->close();
        continue;
      }
      auto join = decode_join(raw.value());
      if (!join.or_log("loadgen.controller")) {
        conn->close();
        continue;
      }
      std::scoped_lock lock(mutex_);
      WorkerSlot* match = nullptr;
      for (auto* slot : fleet) {
        if (!slot->alive && !slot->reported &&
            slot->name == join.value().worker_name) {
          match = slot;
          break;
        }
      }
      if (match == nullptr) {
        // Unknown name, or the slot is still (or again) healthy — the
        // worker's next RESULT attempt on this conn fails and it redials.
        conn->close();
        continue;
      }
      if (match->conn) match->conn->close();
      match->conn = std::move(conn);
      match->metricsz_address = join.value().metricsz_address;
      match->alive = true;
      ++match->generation;
      rejoins.fetch_add(1, std::memory_order_relaxed);
      rejoin_cv_.notify_all();
    }
  });

  for (auto& t : gatherers) t.join();
  gather_done.store(true);
  {
    // Wake the readmitter so it observes gather_done without waiting out
    // the deadline.
    std::scoped_lock lock(mutex_);
    pending_cv_.notify_all();
  }
  readmitter.join();

  Report report;
  report.name = "distributed";
  std::uint64_t max_elapsed_ns = 0;
  std::size_t reported = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const WorkerSlot& slot = *fleet[i];
    if (!slot.reported) continue;
    ++reported;
    const WireWorkerReport& shard = slot.result;
    ConnectionReport conn;
    conn.ops = shard.ops;
    conn.timeouts = shard.timeouts;
    conn.errors = shard.errors;
    conn.transport = shard.transport;
    report.add_connection(conn, shard.latency);
    report.connections += static_cast<std::size_t>(shard.connections);
    max_elapsed_ns = std::max(max_elapsed_ns, shard.elapsed_ns);
    const std::string prefix = "worker" + std::to_string(i) + "_";
    report.service_metrics.emplace_back(prefix + "connections",
                                        static_cast<double>(shard.connections));
    report.service_metrics.emplace_back(prefix + "ops",
                                        static_cast<double>(shard.ops));
    report.service_metrics.emplace_back(prefix + "timeouts",
                                        static_cast<double>(shard.timeouts));
    report.service_metrics.emplace_back(prefix + "errors",
                                        static_cast<double>(shard.errors));
    report.service_metrics.emplace_back(prefix + "latency_p99_us",
                                        ns_to_us(shard.latency.p99()));
  }
  report.elapsed = std::chrono::duration_cast<Duration>(
      std::chrono::nanoseconds(max_elapsed_ns));
  // per_connection carries one entry per *worker* here (each already an
  // aggregate over its own connections), so the usual size==connections
  // invariant is intentionally different for distributed reports.
  std::size_t degraded = 0;
  for (auto* slot : fleet) {
    if (slot->degraded) ++degraded;
  }
  report.service_metrics.emplace_back(
      "workers_expected", static_cast<double>(options_.workers));
  report.service_metrics.emplace_back("workers_reported",
                                      static_cast<double>(reported));
  report.service_metrics.emplace_back("workers_degraded",
                                      static_cast<double>(degraded));
  report.service_metrics.emplace_back(
      "worker_rejoins", static_cast<double>(rejoins.load()));
  if (reported < options_.workers) {
    report.completeness = StatusCode::kUnavailable;
  }

  // Server-side truth from each surviving worker's own registry; the rows
  // land prefixed so CI can assert per-worker keys are present and nonzero.
  // Scrapes run in parallel, each under its own scrape_timeout: one dead
  // worker endpoint costs exactly one scrape window, never the sum.
  std::atomic<std::uint64_t> scrape_failures{0};
  std::vector<std::vector<std::pair<std::string, double>>> scraped_rows(
      fleet.size());
  std::vector<std::thread> scrapers;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    WorkerSlot& slot = *fleet[i];
    if (!slot.reported || slot.metricsz_address.empty()) continue;
    scrapers.emplace_back(
        [this, i, &scraped_rows, &scrape_failures,
         address = slot.metricsz_address] {
          auto scraped = obs::scrape_metrics(
              net_, address, Deadline::after(options_.scrape_timeout));
          if (!scraped.or_log("loadgen.controller")) {
            scrape_failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          scraped_rows[i] = std::move(scraped).value();
        });
  }
  for (auto& t : scrapers) t.join();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string prefix = "worker" + std::to_string(i) + "_";
    for (auto& [key, value] : scraped_rows[i]) {
      report.service_metrics.emplace_back(prefix + key, value);
    }
  }
  report.service_metrics.emplace_back(
      "scrape_failures", static_cast<double>(scrape_failures.load()));

  // Session over: release the fleet. Workers treat BYE (or a close) as the
  // signal to tear down their endpoints and exit.
  for (auto* slot : fleet) {
    if (!slot->alive) continue;
    (void)slot->conn->send(encode_bye(), Deadline::after(options_.io_timeout));
    slot->conn->close();
    slot->alive = false;
  }
  return report;
}

}  // namespace cs::loadgen
