#include "ogsa/host.hpp"

#include "common/strings.hpp"
#include "wire/message.hpp"

namespace cs::ogsa {

using common::Bytes;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr std::uint32_t kRpcTag = 0x0651;  // "OGSI" RPC channel
constexpr char kSep = '\x1f';

std::string join_fields(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += kSep;
    out += fields[i];
  }
  return out;
}
}  // namespace

Result<std::unique_ptr<ServiceHost>> ServiceHost::start(
    net::Network& net, std::shared_ptr<Registry> registry,
    const Options& options) {
  if (!registry) {
    return Status{StatusCode::kInvalidArgument, "null registry"};
  }
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  auto conn_host = net::ConnectionHost::start(net::ConnectionHost::Options{});
  if (!conn_host.is_ok()) return conn_host.status();
  std::unique_ptr<ServiceHost> host{new ServiceHost};
  host->registry_ = std::move(registry);
  host->listener_ = std::move(listener).value();
  host->host_ = std::move(conn_host).value();
  ServiceHost* self = host.get();
  // Event-driven accept when the transport allows: registration with the
  // host is enqueue-only, so the handler is poller-safe.
  host->accept_pump_ = std::make_unique<net::AcceptPump>(
      host->host_->event_host(), *host->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return host;
}

ServiceHost::~ServiceHost() { stop(); }

void ServiceHost::stop() {
  if (stopped_.exchange(true)) return;
  // Uniform teardown order: listener, accept pump, host.
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  if (host_) host_->stop();
}

std::size_t ServiceHost::service_threads() const {
  return (accept_pump_ && !accept_pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0);
}

void ServiceHost::handle_conn(net::ConnectionPtr conn) {
  if (stopped_.load()) {  // raced with stop(): don't leak a live conn
    conn->close();
    return;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const bool hosted = host_->add(
      id, conn,
      [this](std::uint64_t cid, common::Bytes message) {
        on_message(cid, message);
      },
      {});
  if (!hosted) conn->close();  // raced with stop()
}

void ServiceHost::on_message(std::uint64_t id, const common::Bytes& message) {
  std::string reply;
  auto m = wire::Message::decode(message);
  auto body = m.is_ok() ? wire::extract_string(m.value())
                        : Result<std::string>{m.status()};
  if (!body.is_ok()) {
    reply = std::string("ERR") + kSep + "PROTOCOL_ERROR" + kSep +
            body.status().to_string();
  } else {
    const auto fields = common::split(body.value(), kSep);
    if (fields.size() >= 2 && fields[0] == "FIND") {
      std::string out;
      for (const auto& entry : registry_->find(fields[1])) {
        if (!out.empty()) out += '\n';
        out += entry.handle;
      }
      reply = std::string("OK") + kSep + out;
    } else if (fields.size() >= 3 && fields[0] == "INVOKE") {
      auto service = registry_->resolve(fields[1]);
      if (!service.is_ok()) {
        reply = std::string("ERR") + kSep +
                std::string(common::to_string(service.status().code())) + kSep +
                service.status().message();
      } else {
        std::vector<std::string> args(fields.begin() + 3, fields.end());
        auto result = service.value()->invoke(fields[2], args);
        if (result.is_ok()) {
          reply = std::string("OK") + kSep + result.value();
        } else {
          reply = std::string("ERR") + kSep +
                  std::string(common::to_string(result.status().code())) +
                  kSep + result.status().message();
        }
      }
    } else {
      reply = std::string("ERR") + kSep + "INVALID_ARGUMENT" + kSep +
              "bad request";
    }
  }
  // Replies are control traffic (lossless-or-dead): a client that stops
  // draining them is disconnected, never silently starved.
  (void)host_->reply(id,
                     wire::make_control_message(kRpcTag, reply).encode());
}

Result<ServiceClient> ServiceClient::connect(net::Network& net,
                                             const std::string& address,
                                             Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  ServiceClient client;
  client.conn_ = std::move(conn).value();
  return client;
}

namespace {
Result<std::string> parse_reply(const Bytes& raw) {
  auto m = wire::Message::decode(raw);
  if (!m.is_ok()) return m.status();
  auto body = wire::extract_string(m.value());
  if (!body.is_ok()) return body.status();
  const auto fields = common::split(body.value(), kSep);
  if (fields.empty()) {
    return Status{StatusCode::kProtocolError, "empty reply"};
  }
  if (fields[0] == "OK") {
    return fields.size() > 1 ? fields[1] : std::string{};
  }
  if (fields[0] == "ERR" && fields.size() >= 3) {
    for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
      if (fields[1] == common::to_string(static_cast<StatusCode>(c))) {
        return Status{static_cast<StatusCode>(c), fields[2]};
      }
    }
  }
  return Status{StatusCode::kProtocolError, "bad reply: " + body.value()};
}
}  // namespace

Result<std::vector<Handle>> ServiceClient::find(const std::string& pattern,
                                                Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  std::scoped_lock lock(mutex_);
  const std::string request = join_fields({"FIND", pattern});
  if (Status s = conn_->send(
          wire::make_control_message(kRpcTag, request).encode(), deadline);
      !s.is_ok()) {
    return s;
  }
  auto raw = conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto body = parse_reply(raw.value());
  if (!body.is_ok()) return body.status();
  std::vector<Handle> handles;
  if (!body.value().empty()) {
    for (auto& line : common::split(body.value(), '\n')) {
      handles.push_back(std::move(line));
    }
  }
  return handles;
}

Result<std::string> ServiceClient::invoke(const Handle& handle,
                                          const std::string& operation,
                                          const std::vector<std::string>& args,
                                          Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  std::scoped_lock lock(mutex_);
  std::vector<std::string> fields{"INVOKE", handle, operation};
  fields.insert(fields.end(), args.begin(), args.end());
  if (Status s = conn_->send(
          wire::make_control_message(kRpcTag, join_fields(fields)).encode(),
          deadline);
      !s.is_ok()) {
    return s;
  }
  auto raw = conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  return parse_reply(raw.value());
}

void ServiceClient::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace cs::ogsa
