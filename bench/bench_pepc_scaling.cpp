// E5 — O(N log N) force summation (paper section 3.4).
//
// Claim: "The code uses a hierarchical tree algorithm to perform potential
// and force summation for charged particles in a time O(N log N), allowing
// mesh-free particle simulation on length- and time-scales normally
// possible only with particle-in-cell or hydrodynamic techniques."
//
// Measured: full force evaluation (tree build + traversal, theta = 0.6)
// versus O(N^2) direct summation over an N sweep; the complexity counter
// reports interactions per particle, which should grow ~log N for the tree
// and ~N for direct.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sim/pepc/direct.hpp"
#include "sim/pepc/tree.hpp"

namespace {

using cs::common::Vec3;

std::vector<cs::pepc::Particle> plasma(int n) {
  cs::common::Rng rng{17};
  std::vector<cs::pepc::Particle> particles(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = particles[static_cast<std::size_t>(i)];
    p.pos[0] = rng.uniform(-1, 1);
    p.pos[1] = rng.uniform(-1, 1);
    p.pos[2] = rng.uniform(-1, 1);
    p.charge = (i % 2 == 0) ? 1.0 : -1.0;
  }
  return particles;
}

void BM_TreeForces(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto particles = plasma(n);
  std::vector<Vec3> forces(particles.size());
  cs::pepc::TreeConfig config;
  config.theta = 0.6;
  double interactions_per_particle = 0;
  for (auto _ : state) {
    cs::pepc::Octree tree(config);
    tree.build(particles);
    tree.accumulate_forces(particles, forces);
    benchmark::DoNotOptimize(forces.data());
    interactions_per_particle =
        static_cast<double>(tree.interaction_count()) / n;
  }
  state.counters["interactions_per_particle"] = interactions_per_particle;
  state.counters["particles_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}

void BM_DirectForces(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto particles = plasma(n);
  std::vector<Vec3> forces(particles.size());
  cs::pepc::DirectSolver solver(0.05);
  for (auto _ : state) {
    solver.accumulate_forces(particles, forces);
    benchmark::DoNotOptimize(forces.data());
  }
  state.counters["interactions_per_particle"] = static_cast<double>(n - 1);
  state.counters["particles_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_TreeForces)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 17)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_DirectForces)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 14)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

BENCHMARK_MAIN();
