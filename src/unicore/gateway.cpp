#include "unicore/gateway.hpp"

#include "common/log.hpp"

namespace cs::unicore {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
}

Result<std::unique_ptr<Gateway>> Gateway::start(net::Network& net,
                                                const Options& options) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<Gateway> gw{new Gateway};
  gw->options_ = options;
  gw->listener_ = std::move(listener).value();
  Gateway* self = gw.get();
  gw->accept_pump_ = std::make_unique<net::AcceptPump>(
      *gw->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return gw;
}

Gateway::~Gateway() { stop(); }

void Gateway::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  std::vector<std::jthread> threads;
  {
    std::scoped_lock lock(mutex_);
    threads = std::move(connection_threads_);
    connection_threads_.clear();
  }
  for (auto& t : threads) {
    t.request_stop();
    if (t.joinable()) t.join();
  }
}

void Gateway::register_vsite(Njs& njs) {
  std::scoped_lock lock(mutex_);
  vsites_[njs.vsite()] = &njs;
}

Gateway::Stats Gateway::stats() const {
  // Shim over the registry-backed counters (see gateway.hpp).
  Stats out;
  out.transactions = ctr_transactions_.value();
  out.rejected_untrusted = ctr_rejected_untrusted_.value();
  return out;
}

void Gateway::handle_conn(net::ConnectionPtr conn) {
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live pump
    conn->close();
    return;
  }
  net::ConnectionPtr c = std::move(conn);
  connection_threads_.emplace_back(
      [this, c](std::stop_token cst) { serve_connection(cst, c); });
}

void Gateway::serve_connection(const std::stop_token& st,
                               net::ConnectionPtr conn) {
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) return;
      continue;
    }
    UplResponse response;
    auto request = decode_upl_request(raw.value());
    if (!request.is_ok()) {
      response.status = request.status();
    } else {
      response = handle(request.value());
    }
    if (!conn->send(encode_upl_response(response),
                    Deadline::after(std::chrono::seconds(2)))
             .is_ok()) {
      conn->close();
      return;
    }
  }
}

UplResponse Gateway::handle(const UplRequest& request) {
  UplResponse response;
  Njs* njs = nullptr;
  ctr_transactions_.add();
  {
    std::scoped_lock lock(mutex_);
    if (!trust_.is_trusted(request.identity)) {
      ctr_rejected_untrusted_.add();
      response.status =
          Status{StatusCode::kPermissionDenied,
                 "certificate not trusted: " + request.identity.subject};
      return response;
    }
    auto it = vsites_.find(request.vsite);
    if (it == vsites_.end()) {
      response.status =
          Status{StatusCode::kNotFound, "unknown vsite: " + request.vsite};
      return response;
    }
    njs = it->second;
  }

  switch (request.op) {
    case UplOp::kConsign: {
      auto ajo = Ajo::parse(request.text);
      if (!ajo.is_ok()) {
        response.status = ajo.status();
        return response;
      }
      auto job = njs->consign(ajo.value(), request.identity);
      if (!job.is_ok()) {
        response.status = job.status();
        return response;
      }
      response.text = std::move(job).value();
      return response;
    }
    case UplOp::kStatus: {
      auto state = njs->job_state(request.job_id, request.identity);
      if (!state.is_ok()) {
        response.status = state.status();
        return response;
      }
      response.text = std::string(to_string(state.value()));
      return response;
    }
    case UplOp::kOutcome: {
      auto outcome = njs->job_outcome(request.job_id, request.identity);
      if (!outcome.is_ok()) {
        response.status = outcome.status();
        return response;
      }
      response.outcome = std::move(outcome).value();
      response.has_outcome = true;
      return response;
    }
    case UplOp::kAbort: {
      response.status = njs->abort_job(request.job_id, request.identity);
      return response;
    }
    case UplOp::kInvite: {
      const auto sep = request.text.find('\x1f');
      if (sep == std::string::npos) {
        response.status =
            Status{StatusCode::kInvalidArgument, "bad invite payload"};
        return response;
      }
      Certificate guest{request.text.substr(0, sep),
                        request.text.substr(sep + 1)};
      response.status = njs->invite(request.job_id, request.identity, guest);
      return response;
    }
    case UplOp::kVisit: {
      auto reply =
          njs->visit_transact(request.job_id, request.identity, request.binary);
      if (!reply.is_ok()) {
        response.status = reply.status();
        return response;
      }
      response.binary = std::move(reply).value();
      return response;
    }
  }
  response.status = Status{StatusCode::kInvalidArgument, "bad op"};
  return response;
}

}  // namespace cs::unicore
