#include "loadgen/worker.hpp"

#include <memory>
#include <thread>
#include <utility>

#include "loadgen/scenarios.hpp"
#include "net/reconnect.hpp"
#include "obs/endpoint.hpp"
#include "obs/registry.hpp"

namespace cs::loadgen {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

/// Receives control frames until `want` arrives; unexpected-but-valid
/// control ops are skipped (the deadline still bounds the whole wait).
Result<common::Bytes> recv_control(net::Connection& conn, ControlOp want,
                                   Deadline deadline) {
  while (!deadline.has_expired()) {
    auto raw = conn.recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto op = decode_control_op(raw.value());
    if (!op.is_ok()) return op.status();
    if (op.value() == want) return raw;
  }
  return Status{StatusCode::kTimeout, "control frame deadline"};
}

}  // namespace

Result<WireWorkerReport> WorkerAgent::run(net::Network& net,
                                          const Options& options) {
  auto dialed = net::connect_retry(net, options.controller_address,
                                   Deadline::after(options.connect_timeout));
  if (!dialed.is_ok()) return dialed.status();
  net::ConnectionPtr conn = std::move(dialed).value();

  // Worker-side registry, scraped by the controller during collect().
  // Declared before the endpoint so the endpoint (whose source reads it)
  // is torn down first.
  obs::Registry registry;
  std::unique_ptr<obs::MetricsEndpoint> endpoint;
  std::string metricsz;
  if (!options.metricsz_address.empty()) {
    auto started = obs::MetricsEndpoint::start(
        net, options.metricsz_address,
        [&registry] { return registry.snapshot(); });
    if (!started.is_ok()) {
      conn->close();
      return started.status();
    }
    endpoint = std::move(started).value();
    metricsz = endpoint->address();
  }

  JoinFrame join;
  join.worker_name = options.name;
  join.metricsz_address = metricsz;
  if (Status s =
          conn->send(encode_join(join), Deadline::after(options.io_timeout));
      !s.is_ok()) {
    conn->close();
    return s;
  }

  auto assign_frame = recv_control(*conn, ControlOp::kAssign,
                                   Deadline::after(options.session_timeout));
  if (!assign_frame.is_ok()) {
    conn->close();
    return assign_frame.status();
  }
  auto spec = decode_assign(assign_frame.value());
  if (!spec.is_ok()) {
    conn->close();
    return spec.status();
  }

  auto runner = make_spec_runner(net, spec.value());
  if (!runner.is_ok()) {
    conn->close();
    return runner.status();
  }
  if (Status s =
          runner.value()->prepare(Deadline::after(options.prepare_timeout));
      !s.is_ok()) {
    // Closing (instead of acking) is the failure signal: the controller
    // marks this slot lost when its READY wait errors out.
    conn->close();
    return s;
  }
  if (Status s = conn->send(encode_ready(spec.value().worker_index),
                            Deadline::after(options.io_timeout));
      !s.is_ok()) {
    conn->close();
    return s;
  }

  auto start_frame = recv_control(*conn, ControlOp::kStart,
                                  Deadline::after(options.session_timeout));
  if (!start_frame.is_ok()) {
    conn->close();
    return start_frame.status();
  }

  auto shard = runner.value()->execute();
  if (!shard.is_ok()) {
    conn->close();
    return shard.status();
  }
  shard.value().worker_index = spec.value().worker_index;

  // Publish the shard into the registry before RESULT goes out: the
  // controller scrapes between receiving RESULT and sending BYE, so these
  // must already be visible.
  registry.counter("agent_connections").add(shard.value().connections);
  registry.counter("agent_ops").add(shard.value().ops);
  registry.counter("agent_timeouts").add(shard.value().timeouts);
  registry.counter("agent_errors").add(shard.value().errors);
  registry.counter("agent_bytes_received", "bytes")
      .add(shard.value().transport.bytes_received);
  registry.timer_fn("agent_latency", [hist = shard.value().latency] {
    return hist;
  });

  // Ship the shard and hold the session open for the controller's scrape;
  // BYE releases us. A control connection that dies here (controller
  // flapped, injected fault cut the link) is a degradation, not a loss:
  // redial, re-JOIN under the same name — the controller readmits degraded
  // workers by name until its collect deadline — and resend the shard.
  net::Reconnector redial;
  Deadline rejoin_deadline = Deadline::infinite();  // armed on first failure
  bool result_on_wire = false;
  for (;;) {
    Status sent = conn->send(encode_result(shard.value()),
                             Deadline::after(options.io_timeout));
    if (sent.is_ok()) {
      result_on_wire = true;
      auto bye = recv_control(*conn, ControlOp::kBye,
                              Deadline::after(options.session_timeout));
      // A timeout means the controller is alive but slow — the session is
      // over either way. Only a dropped connection warrants a rejoin.
      if (bye.is_ok() || bye.status().code() != StatusCode::kClosed) break;
    }
    conn->close();
    if (rejoin_deadline.is_infinite()) {
      rejoin_deadline = Deadline::after(options.rejoin_timeout);
    }
    auto re = redial.dial(net, options.controller_address, rejoin_deadline);
    if (!re.is_ok()) {
      // RESULT reached the wire at least once: best-effort delivered, the
      // controller just never confirmed. A shard that never shipped is a
      // real failure.
      if (result_on_wire) break;
      return sent;
    }
    conn = std::move(re).value();
    // JOIN introduces us again; a failed send just loops back into the
    // RESULT attempt, which fails and redials under the same deadline.
    (void)conn->send(encode_join(join), Deadline::after(options.io_timeout));
  }
  conn->close();
  return std::move(shard).value();
}

}  // namespace cs::loadgen
