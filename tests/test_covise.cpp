// Tests for the COVISE substrate: data objects, shared data space
// (zero-copy locally), request brokers (cross-host transfer + caching),
// controller execution semantics (topological order, dirty propagation),
// standard modules, and parameter-sync collaborative sessions.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "covise/collab.hpp"
#include "covise/controller.hpp"
#include "covise/modules.hpp"
#include "net/inproc.hpp"
#include "visit/control.hpp"

namespace cs::covise {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;
using common::Vec3;

/// Sphere-ish analytic field used by most pipelines here.
UniformGridData make_test_field(int n, double time = 0.0) {
  UniformGridData g;
  g.nx = g.ny = g.nz = n;
  g.spacing = 2.0 / (n - 1);
  g.origin = Vec3{-1, -1, -1};
  g.values.resize(static_cast<std::size_t>(n) * n * n);
  const double radius = 0.6 + 0.2 * std::sin(time);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Vec3 p = g.origin + Vec3{x * g.spacing, y * g.spacing,
                                       z * g.spacing};
        g.values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(radius - norm(p));
      }
    }
  }
  return g;
}

// ------------------------------------------------------------ DataObject --

TEST(DataObject, GridEncodeDecodeRoundTrip) {
  DataObject obj{"hostA/src/field/0", make_test_field(8)};
  auto decoded = DataObject::decode(obj.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().name(), obj.name());
  const auto* grid = decoded.value().as<UniformGridData>();
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->nx, 8);
  EXPECT_EQ(grid->values, obj.as<UniformGridData>()->values);
}

TEST(DataObject, GeometryRoundTripWithAttributes) {
  GeometryData geom;
  geom.mesh.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  geom.mesh.triangles = {{0, 1, 2}};
  geom.color = {9, 8, 7};
  DataObject obj{"h/m/geometry/1", std::move(geom)};
  obj.set_attribute("COLOR", "red");
  obj.set_attribute("PART", "wing");
  auto decoded = DataObject::decode(obj.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().attributes().at("COLOR"), "red");
  const auto* g = decoded.value().as<GeometryData>();
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->mesh.triangles.size(), 1u);
  EXPECT_EQ(g->color, (viz::Color{9, 8, 7}));
}

TEST(DataObject, ImageAndTextRoundTrip) {
  viz::Image img(4, 3, {1, 2, 3});
  DataObject obj{"h/r/image/0", ImageData{img}};
  auto decoded = DataObject::decode(obj.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().as<ImageData>()->image, img);

  DataObject text{"h/m/log/0", std::string("hello")};
  auto decoded2 = DataObject::decode(text.encode());
  ASSERT_TRUE(decoded2.is_ok());
  EXPECT_EQ(*decoded2.value().as<std::string>(), "hello");
}

TEST(DataObject, DecodeRejectsCorruptInput) {
  DataObject obj{"h/m/field/0", make_test_field(4)};
  auto encoded = obj.encode();
  encoded.resize(encoded.size() / 2);  // truncate
  EXPECT_FALSE(DataObject::decode(encoded).is_ok());
  EXPECT_FALSE(DataObject::decode(common::Bytes{1, 2, 3}).is_ok());
}

TEST(DataObject, DecodeRejectsBadTriangleIndices) {
  GeometryData geom;
  geom.mesh.vertices = {{0, 0, 0}};
  geom.mesh.triangles = {{0, 5, 0}};  // index 5 out of range
  DataObject obj{"h/m/g/0", std::move(geom)};
  EXPECT_FALSE(DataObject::decode(obj.encode()).is_ok());
}

// ------------------------------------------------------------------- SDS --

TEST(Sds, PutGetRemove) {
  SharedDataSpace sds{"hostA"};
  auto obj = std::make_shared<DataObject>("hostA/m/out/0", std::string("x"));
  ASSERT_TRUE(sds.put(obj).is_ok());
  EXPECT_EQ(sds.size(), 1u);
  auto got = sds.get("hostA/m/out/0");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().get(), obj.get());  // same object, zero copy
  ASSERT_TRUE(sds.remove("hostA/m/out/0").is_ok());
  EXPECT_EQ(sds.get("hostA/m/out/0").status().code(), StatusCode::kNotFound);
}

TEST(Sds, DuplicateNameRejected) {
  SharedDataSpace sds{"hostA"};
  ASSERT_TRUE(
      sds.put(std::make_shared<DataObject>("n", std::string("a"))).is_ok());
  EXPECT_EQ(sds.put(std::make_shared<DataObject>("n", std::string("b"))).code(),
            StatusCode::kAlreadyExists);
}

TEST(Sds, UniqueNamesAreUnique) {
  SharedDataSpace sds{"hostA"};
  const auto a = sds.unique_name("Iso", "geometry");
  const auto b = sds.unique_name("Iso", "geometry");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.starts_with("hostA/Iso/geometry/"));
}

TEST(Sds, RemovePrefixCleansGenerations) {
  SharedDataSpace sds{"h"};
  (void)sds.put(std::make_shared<DataObject>("h/Iso/g/0", std::string("a")));
  (void)sds.put(std::make_shared<DataObject>("h/Iso/g/1", std::string("b")));
  (void)sds.put(std::make_shared<DataObject>("h/Cut/g/0", std::string("c")));
  EXPECT_EQ(sds.remove_prefix("h/Iso/"), 2u);
  EXPECT_EQ(sds.size(), 1u);
}

// ------------------------------------------------------------------- CRB --

TEST(Crb, CrossHostFetchAndCache) {
  net::InProcNetwork net;
  auto sds_a = std::make_shared<SharedDataSpace>("hostA");
  auto sds_b = std::make_shared<SharedDataSpace>("hostB");
  auto crb_a = RequestBroker::start(net, sds_a, "s1");
  auto crb_b = RequestBroker::start(net, sds_b, "s1");
  ASSERT_TRUE(crb_a.is_ok() && crb_b.is_ok());

  auto obj = std::make_shared<DataObject>("hostA/src/field/0",
                                          make_test_field(8));
  ASSERT_TRUE(sds_a->put(obj).is_ok());

  // B resolves A's object: one network fetch...
  auto fetched = crb_b.value()->resolve("hostA/src/field/0",
                                        Deadline::after(5s));
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value()->as<UniformGridData>()->values,
            obj->as<UniformGridData>()->values);
  EXPECT_EQ(crb_b.value()->stats().objects_fetched, 1u);
  EXPECT_GT(crb_b.value()->stats().bytes_received,
            8u * 8 * 8 * sizeof(float));

  // ...the second resolve is a local cache hit, no new transfer.
  auto again = crb_b.value()->resolve("hostA/src/field/0",
                                      Deadline::after(5s));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(crb_b.value()->stats().objects_fetched, 1u);
  EXPECT_EQ(crb_b.value()->stats().local_hits, 1u);
}

TEST(Crb, MissingObjectReported) {
  net::InProcNetwork net;
  auto sds_a = std::make_shared<SharedDataSpace>("hostA");
  auto sds_b = std::make_shared<SharedDataSpace>("hostB");
  auto crb_a = RequestBroker::start(net, sds_a, "s2");
  auto crb_b = RequestBroker::start(net, sds_b, "s2");
  auto r = crb_b.value()->resolve("hostA/ghost/x/0", Deadline::after(2s));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Crb, UnknownHostReported) {
  net::InProcNetwork net;
  auto sds = std::make_shared<SharedDataSpace>("hostA");
  auto crb = RequestBroker::start(net, sds, "s3");
  auto r = crb.value()->resolve("atlantis/x/y/0", Deadline::after(100ms));
  EXPECT_FALSE(r.is_ok());
}

TEST(Crb, HostedPeersKeepServeThreadsFlat) {
  // Several peer brokers fetch from hostA; every inbound connection rides
  // the serving broker's connection host (shared fallback pump for these
  // handle-less links), so its thread count is the same with four peers
  // attached as with one.
  net::InProcNetwork net;
  auto sds_a = std::make_shared<SharedDataSpace>("hostA");
  auto crb_a = RequestBroker::start(net, sds_a, "flat");
  ASSERT_TRUE(crb_a.is_ok());
  auto obj = std::make_shared<DataObject>("hostA/src/field/0",
                                          make_test_field(8));
  ASSERT_TRUE(sds_a->put(obj).is_ok());

  std::vector<std::shared_ptr<SharedDataSpace>> peer_spaces;
  std::vector<std::unique_ptr<RequestBroker>> peers;
  std::size_t threads_with_one = 0;
  for (int i = 0; i < 4; ++i) {
    peer_spaces.push_back(
        std::make_shared<SharedDataSpace>("host" + std::to_string(i)));
    auto peer = RequestBroker::start(net, peer_spaces.back(), "flat");
    ASSERT_TRUE(peer.is_ok());
    peers.push_back(std::move(peer).value());
    auto fetched =
        peers.back()->resolve("hostA/src/field/0", Deadline::after(5s));
    ASSERT_TRUE(fetched.is_ok());
    if (i == 0) threads_with_one = crb_a.value()->service_threads();
  }
  EXPECT_EQ(crb_a.value()->stats().objects_served, 4u);
  EXPECT_EQ(crb_a.value()->service_threads(), threads_with_one);
  // In-process accept pump + epoll poller + shared fallback pump.
  EXPECT_LE(crb_a.value()->service_threads(), 3u);

  crb_a.value()->stop();
  crb_a.value()->stop();  // idempotent
  // A peer's fetch now fails instead of hanging; its own broker survives.
  EXPECT_FALSE(
      peers[0]->resolve("hostA/src/field/1", Deadline::after(200ms)).is_ok());
  for (auto& peer : peers) peer->stop();
}

// ------------------------------------------------------------ controller --

struct PipelineFixture {
  net::InProcNetwork net;
  Controller controller{net, "sess"};
  std::string src, iso, renderer;

  explicit PipelineFixture(const std::string& iso_host = "hostA") {
    EXPECT_TRUE(controller.add_host("hostA").is_ok());
    EXPECT_TRUE(controller.add_host("hostB").is_ok());
    src = controller
              .add_module("hostA", std::make_unique<FieldSourceModule>(
                                       [](double t) {
                                         return make_test_field(12, t);
                                       }))
              .value();
    iso = controller.add_module(iso_host, std::make_unique<IsoSurfaceModule>())
              .value();
    renderer =
        controller.add_module("hostB", std::make_unique<RendererModule>())
            .value();
    EXPECT_TRUE(
        controller.connect_ports(src, "field", iso, "field").is_ok());
    EXPECT_TRUE(
        controller.connect_ports(iso, "geometry", renderer, "geometry0")
            .is_ok());
    viz::Camera cam;
    cam.look_at({0, 0, 3}, {0, 0, 0}, {0, 1, 0});
    EXPECT_TRUE(
        controller.set_param(renderer, "camera", cam.serialize()).is_ok());
    EXPECT_TRUE(controller.set_param(renderer, "width", "64").is_ok());
    EXPECT_TRUE(controller.set_param(renderer, "height", "64").is_ok());
  }
};

TEST(Controller, PipelineProducesImage) {
  PipelineFixture f;
  auto executed = f.controller.execute();
  ASSERT_TRUE(executed.is_ok()) << executed.status().to_string();
  EXPECT_EQ(executed.value(), 3u);
  auto image = f.controller.output_of(f.renderer, "image");
  ASSERT_TRUE(image.is_ok());
  const auto* img = image.value()->as<ImageData>();
  ASSERT_NE(img, nullptr);
  int lit = 0;
  for (const auto& p : img->image.pixels()) {
    if (p.b > 60) ++lit;  // the blue-ish isosurface sphere
  }
  EXPECT_GT(lit, 100);
}

TEST(Controller, NothingDirtyNothingRuns) {
  PipelineFixture f;
  ASSERT_TRUE(f.controller.execute().is_ok());
  auto second = f.controller.execute();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), 0u);
}

TEST(Controller, ParamChangeRunsOnlyDownstream) {
  PipelineFixture f;
  ASSERT_TRUE(f.controller.execute().is_ok());
  ASSERT_TRUE(f.controller.set_param(f.iso, "isovalue", "0.1").is_ok());
  auto executed = f.controller.execute();
  ASSERT_TRUE(executed.is_ok());
  EXPECT_EQ(executed.value(), 2u);  // iso + renderer, not the source
}

TEST(Controller, SourceChangeRunsWholePipeline) {
  PipelineFixture f;
  ASSERT_TRUE(f.controller.execute().is_ok());
  ASSERT_TRUE(f.controller.set_param(f.src, "time", "1.5").is_ok());
  auto executed = f.controller.execute();
  ASSERT_TRUE(executed.is_ok());
  EXPECT_EQ(executed.value(), 3u);
}

TEST(Controller, LocalHandoffIsZeroTransfer) {
  // Source and iso on the same host: the field object must move through
  // the SDS only (shared memory), with zero CRB bytes.
  PipelineFixture f{"hostA"};
  ASSERT_TRUE(f.controller.execute().is_ok());
  const auto stats = f.controller.transfer_stats();
  // Only the iso->renderer hop (hostA -> hostB) crosses the network.
  EXPECT_EQ(stats.objects_fetched, 1u);
  EXPECT_GE(stats.local_hits, 1u);
}

TEST(Controller, CrossHostPlacementTransfersField) {
  // Iso moved to hostB: the (large) raw field crosses the network instead
  // of the (smaller) extracted geometry, and the iso->renderer handoff
  // becomes local.
  PipelineFixture f{"hostB"};
  ASSERT_TRUE(f.controller.execute().is_ok());
  const auto stats = f.controller.transfer_stats();
  EXPECT_EQ(stats.objects_fetched, 1u);
  EXPECT_GT(stats.bytes_received, 12u * 12 * 12 * sizeof(float));
  EXPECT_GE(stats.local_hits, 1u);
}

TEST(Controller, CycleDetected) {
  net::InProcNetwork net;
  Controller c{net, "cyc"};
  ASSERT_TRUE(c.add_host("h").is_ok());
  // Two modules that feed each other through compatible ports.
  struct Echo : Module {
    Echo() : Module("Echo") {
      add_input("in");
      add_output("out");
    }
    common::Status compute(ModuleContext& ctx) override {
      ctx.set_output("out", std::string("x"));
      return common::Status::ok();
    }
  };
  auto a = c.add_module("h", std::make_unique<Echo>()).value();
  auto b = c.add_module("h", std::make_unique<Echo>()).value();
  ASSERT_TRUE(c.connect_ports(a, "out", b, "in").is_ok());
  ASSERT_TRUE(c.connect_ports(b, "out", a, "in").is_ok());
  auto executed = c.execute();
  ASSERT_FALSE(executed.is_ok());
  EXPECT_EQ(executed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Controller, BadConnectionsRejected) {
  PipelineFixture f;
  EXPECT_EQ(f.controller.connect_ports("nope", "x", f.iso, "field").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      f.controller.connect_ports(f.src, "bogus", f.iso, "field").code(),
      StatusCode::kNotFound);
  // field input already connected in the fixture.
  EXPECT_EQ(
      f.controller.connect_ports(f.src, "field", f.iso, "field").code(),
      StatusCode::kAlreadyExists);
}

TEST(Controller, ModuleFailureSurfacesWithName) {
  net::InProcNetwork net;
  Controller c{net, "fail"};
  ASSERT_TRUE(c.add_host("h").is_ok());
  struct Bomb : Module {
    Bomb() : Module("Bomb") { add_output("out"); }
    common::Status compute(ModuleContext&) override {
      return common::Status{StatusCode::kInternal, "boom"};
    }
  };
  auto id = c.add_module("h", std::make_unique<Bomb>()).value();
  auto executed = c.execute();
  ASSERT_FALSE(executed.is_ok());
  EXPECT_NE(executed.status().message().find(id), std::string::npos);
}

TEST(Controller, CuttingPlaneGeometryScalesWithResolution) {
  net::InProcNetwork net;
  Controller c{net, "scale"};
  ASSERT_TRUE(c.add_host("h").is_ok());
  std::size_t previous = 0;
  for (int n : {8, 16, 32}) {
    auto src = c.add_module("h", std::make_unique<FieldSourceModule>(
                                     [n](double) { return make_test_field(n); }))
                   .value();
    auto cut = c.add_module("h", std::make_unique<CuttingPlaneModule>()).value();
    ASSERT_TRUE(c.connect_ports(src, "field", cut, "field").is_ok());
    ASSERT_TRUE(c.execute().is_ok());
    auto geometry = c.output_of(cut, "geometry");
    ASSERT_TRUE(geometry.is_ok());
    const std::size_t tris =
        geometry.value()->as<GeometryData>()->mesh.triangles.size();
    EXPECT_GT(tris, previous);
    previous = tris;
  }
}

// ----------------------------------------------------------------- collab --

struct CollabFixture {
  net::InProcNetwork net;
  std::unique_ptr<visit::ControlServer> hub;

  CollabFixture() {
    auto h = visit::ControlServer::start(net, {"covise:sync", "pw", 100ms});
    EXPECT_TRUE(h.is_ok());
    hub = std::move(h).value();
  }

  PipelineBuilder builder(int field_n = 10) {
    return [field_n](Controller& c) -> common::Result<std::string> {
      if (auto s = c.add_host("local"); !s.is_ok()) return s;
      auto src = c.add_module("local", std::make_unique<FieldSourceModule>(
                                           [field_n](double t) {
                                             return make_test_field(field_n, t);
                                           }));
      if (!src.is_ok()) return src.status();
      auto iso = c.add_module("local", std::make_unique<IsoSurfaceModule>());
      if (!iso.is_ok()) return iso.status();
      auto ren = c.add_module("local", std::make_unique<RendererModule>());
      if (!ren.is_ok()) return ren.status();
      if (auto s = c.connect_ports(src.value(), "field", iso.value(), "field");
          !s.is_ok()) {
        return s;
      }
      if (auto s = c.connect_ports(iso.value(), "geometry", ren.value(),
                                   "geometry0");
          !s.is_ok()) {
        return s;
      }
      viz::Camera cam;
      cam.look_at({0, 0, 3}, {0, 0, 0}, {0, 1, 0});
      (void)c.set_param(ren.value(), "camera", cam.serialize());
      (void)c.set_param(ren.value(), "width", "48");
      (void)c.set_param(ren.value(), "height", "48");
      return ren.value();
    };
  }
};

TEST(Collab, MasterSteersAllReplicasConverge) {
  CollabFixture f;
  auto master = CollabParticipant::join(
      f.net, {"covise:sync", "pw", "actor", "master"}, f.builder());
  auto observer1 = CollabParticipant::join(
      f.net, {"covise:sync", "pw", "observer", "obs1"}, f.builder());
  auto observer2 = CollabParticipant::join(
      f.net, {"covise:sync", "pw", "observer", "obs2"}, f.builder());
  ASSERT_TRUE(master.is_ok()) << master.status().to_string();
  ASSERT_TRUE(observer1.is_ok());
  ASSERT_TRUE(observer2.is_ok());
  // Wait until the hub registered everyone.
  const auto deadline = Deadline::after(2s);
  while (f.hub->participant_count() < 3 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }

  // All replicas start from the same image.
  auto v0 = master.value()->current_view();
  auto v1 = observer1.value()->current_view();
  ASSERT_TRUE(v0.is_ok() && v1.is_ok());
  EXPECT_EQ(v0.value(), v1.value());

  // The master changes the isovalue; observers pump and converge.
  const std::string iso = "IsoSurface_1";
  ASSERT_TRUE(master.value()
                  ->steer(iso, "isovalue", "0.15", Deadline::after(2s))
                  .is_ok());
  auto applied1 = observer1.value()->pump(Deadline::after(2s));
  auto applied2 = observer2.value()->pump(Deadline::after(2s));
  ASSERT_TRUE(applied1.is_ok());
  ASSERT_TRUE(applied2.is_ok());
  EXPECT_EQ(applied1.value(), 1u);
  EXPECT_EQ(applied2.value(), 1u);

  auto m = master.value()->current_view();
  auto o1 = observer1.value()->current_view();
  auto o2 = observer2.value()->current_view();
  ASSERT_TRUE(m.is_ok() && o1.is_ok() && o2.is_ok());
  EXPECT_EQ(m.value(), o1.value());
  EXPECT_EQ(m.value(), o2.value());
  EXPECT_NE(m.value(), v0.value());  // the steer actually changed the view
}

TEST(Collab, ObserverSteerIsNotPropagated) {
  CollabFixture f;
  auto master = CollabParticipant::join(
      f.net, {"covise:sync", "pw", "actor", "m2"}, f.builder());
  auto observer = CollabParticipant::join(
      f.net, {"covise:sync", "pw", "observer", "o3"}, f.builder());
  ASSERT_TRUE(master.is_ok() && observer.is_ok());
  const auto deadline = Deadline::after(2s);
  while (f.hub->participant_count() < 2 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  // The observer tries to steer: applies locally but the hub rejects the
  // broadcast, so the master never sees it.
  ASSERT_TRUE(observer.value()
                  ->steer("IsoSurface_1", "isovalue", "0.3",
                          Deadline::after(1s))
                  .is_ok());
  auto applied = master.value()->pump(Deadline::after(300ms));
  ASSERT_TRUE(applied.is_ok());
  EXPECT_EQ(applied.value(), 0u);
}

TEST(Collab, SyncRecordIsTinyRegardlessOfSceneSize) {
  // The E7 mechanism: the steering record is O(bytes), not O(triangles).
  CollabFixture f;
  auto master = CollabParticipant::join(
      f.net, {"covise:sync", "pw", "actor", "m3"}, f.builder(24));
  ASSERT_TRUE(master.is_ok());
  const std::string record =
      "PARAM\x1f" "IsoSurface_1\x1f" "isovalue\x1f" "0.21";
  EXPECT_LT(record.size(), 64u);
  auto geometry =
      master.value()->controller().output_of("IsoSurface_1", "geometry");
  ASSERT_TRUE(geometry.is_ok());
  EXPECT_GT(geometry.value()->byte_size(), 100u * record.size());
}

}  // namespace
}  // namespace cs::covise
