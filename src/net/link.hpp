// Link model: injects WAN behaviour (latency, bandwidth, jitter, loss) into
// the in-process transport.
//
// The paper's latency-budget arguments (sections 4.2-4.4) are about what a
// feedback loop observes over real wide-area links (SuperJanet, G-WiN).
// Reproducing them requires dialing in those link properties; this model is
// the substitution documented in DESIGN.md section 1.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace cs::net {

/// Static description of one direction of a link.
struct LinkModel {
  /// One-way propagation delay added to every message.
  common::Duration latency = common::Duration::zero();
  /// Uniform jitter in [0, jitter] added on top of latency.
  common::Duration jitter = common::Duration::zero();
  /// Serialization rate; 0 means infinite (no transmission delay).
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Probability in [0,1] that a message is silently dropped.
  double drop_probability = 0.0;

  /// A perfect link (defaults): zero latency, infinite bandwidth, no loss.
  static LinkModel perfect() noexcept { return {}; }

  /// Typical 2003-era trans-European research link as used in the paper's
  /// demos: ~15 ms one-way, ~100 Mbit/s.
  static LinkModel wan_europe() noexcept;

  /// Transatlantic link: ~60 ms one-way, ~45 Mbit/s.
  static LinkModel wan_transatlantic() noexcept;

  /// Campus LAN: 0.2 ms, 1 Gbit/s.
  static LinkModel lan() noexcept;
};

/// Per-direction scheduler that turns a LinkModel into delivery timestamps.
///
/// Thread-safe: multiple senders may share one direction.
class LinkScheduler {
 public:
  explicit LinkScheduler(LinkModel model, std::uint64_t jitter_seed = 1) noexcept
      : model_(model), rng_(jitter_seed) {}

  /// Decides the delivery time of a message of `size` bytes sent now.
  /// Returns false when the link model drops the message.
  bool schedule(std::size_t size, common::TimePoint& deliver_at);

  const LinkModel& model() const noexcept { return model_; }

 private:
  LinkModel model_;
  common::Rng rng_;
  common::TimePoint busy_until_{};  // serialization point of the link
  std::mutex mutex_;
};

}  // namespace cs::net
