// Network Job Supervisor.
//
// "NJSs adapt the abstract UNICORE job for the specific HPC system" (paper
// section 3.1): the NJS authenticates the consigner against its user
// database, *incarnates* the AJO into target-level commands, submits them
// to the TSI, and answers status/outcome/steering transactions for its
// vsite.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "unicore/ajo.hpp"
#include "unicore/identity.hpp"
#include "unicore/tsi.hpp"

namespace cs::unicore {

class Njs {
 public:
  Njs(std::string vsite, TargetSystem& tsi) : vsite_(std::move(vsite)), tsi_(tsi) {}

  Uudb& uudb() { return uudb_; }
  const std::string& vsite() const noexcept { return vsite_; }
  TargetSystem& tsi() noexcept { return tsi_; }

  /// Authenticates, incarnates, and submits an AJO. Returns the job id.
  common::Result<std::string> consign(const Ajo& ajo, const Certificate& user);

  common::Result<JobState> job_state(const std::string& job_id,
                                     const Certificate& user) const;
  common::Result<JobOutcome> job_outcome(const std::string& job_id,
                                         const Certificate& user) const;
  common::Status abort_job(const std::string& job_id, const Certificate& user);

  /// Routes a VISIT proxy transaction to the job's ProxyServer. The user
  /// must be the job owner or an explicitly invited collaborator — this is
  /// how "all users participating in the collaboration have to authenticate
  /// to the UNICORE system".
  common::Result<common::Bytes> visit_transact(const std::string& job_id,
                                               const Certificate& user,
                                               common::ByteSpan request);

  /// Allows another certified user to attach to a job's steering session.
  common::Status invite(const std::string& job_id, const Certificate& owner,
                        const Certificate& guest);

 private:
  common::Status authorize(const std::string& job_id,
                           const Certificate& user) const;

  std::string vsite_;
  TargetSystem& tsi_;
  Uudb uudb_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> job_owner_;  // job id -> fingerprint
  std::map<std::string, std::set<std::string>> job_guests_;
  std::atomic<std::uint64_t> next_job_{1};
};

/// Incarnation: AJO tasks -> target commands. Exposed for direct testing
/// ("the details of the scripts are hidden from the application").
common::Result<std::vector<TargetCommand>> incarnate(const Ajo& ajo);

}  // namespace cs::unicore
