// /metricsz — live scrape endpoint any service can opt into.
//
// One AcceptPump-hosted listener speaks a one-frame request/response
// protocol over the stack's ordinary framed transport: a scraper connects,
// sends "/metricsz", and receives one frame holding the text exposition of
// the service's registry (obs::to_text). Repeated requests on one
// connection re-snapshot, so a soak can poll mid-run over a single
// connection. loadgen's scrape side lives in obs::scrape_*; CI greps the
// same text.
//
// Scrapers ride a net::ConnectionHost (readiness-driven, request/reply
// idiom): an idle endpoint holds zero per-scraper threads, and a scraper
// that stops reading its replies is disconnected by the lossless-or-dead
// control overflow policy rather than holding a serve thread hostage.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"

namespace cs::obs {

/// Serves a registry snapshot as text on every request frame.
class MetricsEndpoint {
 public:
  /// Produces the snapshot to expose. A service typically binds its
  /// Registry's snapshot(); composing several registries is just a merge
  /// inside the callback.
  using Source = std::function<Snapshot()>;

  struct Options {
    /// Historical per-request send deadline. Replies now ride the hosted
    /// outbound queue; the queue's lossless-or-dead control policy keeps
    /// the contract (a scraper that stops reading is cut off).
    common::Duration send_timeout = std::chrono::seconds(2);
  };

  /// Binds `address` on `net` and starts serving. The endpoint owns the
  /// listener and its serve threads until stop().
  static common::Result<std::unique_ptr<MetricsEndpoint>> start(
      net::Network& net, const std::string& address, Source source,
      const Options& options);
  static common::Result<std::unique_ptr<MetricsEndpoint>> start(
      net::Network& net, const std::string& address, Source source) {
    return start(net, address, std::move(source), Options());
  }

  ~MetricsEndpoint();
  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// Stops accepting, closes every live scrape connection, stops the host.
  /// Idempotent.
  void stop();

  /// Resolved listen address (kernel-assigned ports made concrete).
  std::string address() const { return listener_->address(); }

  /// Requests answered so far.
  std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// Threads owned regardless of scraper count (zero per-scraper threads).
  std::size_t service_threads() const;

 private:
  MetricsEndpoint(Source source, Options options);
  void on_message(std::uint64_t id);

  Source source_;
  Options options_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::ConnectionHost> host_;
  std::unique_ptr<net::AcceptPump> pump_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> scrapes_{0};
  std::atomic<bool> stopped_{false};
};

/// One-shot scrape: connect, request, return the raw exposition text.
common::Result<std::string> scrape_text(net::Network& net,
                                        const std::string& address,
                                        common::Deadline deadline);

/// One-shot scrape parsed to flat name→value pairs (obs::parse_text).
common::Result<std::vector<std::pair<std::string, double>>> scrape_metrics(
    net::Network& net, const std::string& address, common::Deadline deadline);

}  // namespace cs::obs
