// Unit tests for cs::net: in-process transport semantics (deadlines,
// backpressure, close), the link model, multicast groups, and the real TCP
// implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "util.hpp"

namespace cs::net {
namespace {

using namespace std::chrono_literals;
using common::Bytes;
using common::Deadline;
using common::StatusCode;
using testutil::bytes_of;
using testutil::text_of;

// ---------------------------------------------------------------- InProc --

TEST(InProc, ConnectSendRecvRoundTrip) {
  InProcNetwork net;
  auto listener = net.listen("host:1");
  ASSERT_TRUE(listener.is_ok());
  auto client = net.connect("host:1", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(server.is_ok());

  ASSERT_TRUE(client.value()->send(bytes_of("ping"), Deadline::after(1s)).is_ok());
  auto got = server.value()->recv(Deadline::after(1s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(text_of(got.value()), "ping");

  ASSERT_TRUE(server.value()->send(bytes_of("pong"), Deadline::after(1s)).is_ok());
  auto back = client.value()->recv(Deadline::after(1s));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(text_of(back.value()), "pong");
}

TEST(InProc, ConnectToUnknownAddressFails) {
  InProcNetwork net;
  auto r = net.connect("nowhere:9", Deadline::after(10ms));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InProc, ListenTwiceOnSameAddressFails) {
  InProcNetwork net;
  auto a = net.listen("dup:1");
  ASSERT_TRUE(a.is_ok());
  auto b = net.listen("dup:1");
  ASSERT_FALSE(b.is_ok());
  EXPECT_EQ(b.status().code(), StatusCode::kAlreadyExists);
}

TEST(InProc, AddressReusableAfterListenerClosed) {
  InProcNetwork net;
  {
    auto a = net.listen("reuse:1");
    ASSERT_TRUE(a.is_ok());
  }  // destructor closes and unregisters
  auto b = net.listen("reuse:1");
  EXPECT_TRUE(b.is_ok());
}

TEST(InProc, RecvTimesOutWhenNoMessage) {
  InProcNetwork net;
  auto listener = net.listen("t:1");
  auto client = net.connect("t:1", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  const auto t0 = common::Clock::now();
  auto r = client.value()->recv(Deadline::after(50ms));
  const auto elapsed = common::Clock::now() - t0;
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_GE(elapsed, 45ms);
  EXPECT_LT(elapsed, 500ms);
}

TEST(InProc, AcceptTimesOutWhenNobodyConnects) {
  InProcNetwork net;
  auto listener = net.listen("t:2");
  auto r = listener.value()->accept(Deadline::after(30ms));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST(InProc, CloseWakesBlockedRecv) {
  InProcNetwork net;
  auto listener = net.listen("t:3");
  auto client = net.connect("t:3", Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  auto conn = client.value();
  std::thread closer([&] {
    std::this_thread::sleep_for(30ms);
    conn->close();
  });
  auto r = conn->recv(Deadline::after(5s));
  closer.join();
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kClosed);
}

TEST(InProc, PeerCloseDrainsQueuedMessagesFirst) {
  InProcNetwork net;
  auto listener = net.listen("t:4");
  auto client = net.connect("t:4", Deadline::after(1s));
  auto server = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(client.value()->send(bytes_of("last words"), Deadline::after(1s)).is_ok());
  client.value()->close();
  auto got = server.value()->recv(Deadline::after(1s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(text_of(got.value()), "last words");
  auto eof = server.value()->recv(Deadline::after(1s));
  ASSERT_FALSE(eof.is_ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kClosed);
}

TEST(InProc, SendAfterCloseFails) {
  InProcNetwork net;
  auto listener = net.listen("t:5");
  auto client = net.connect("t:5", Deadline::after(1s));
  client.value()->close();
  auto s = client.value()->send(bytes_of("x"), Deadline::after(10ms));
  EXPECT_EQ(s.code(), StatusCode::kClosed);
}

TEST(InProc, BackpressureBlocksAndTimesOut) {
  InProcNetwork net;
  auto listener = net.listen("bp:1");
  ConnectOptions opts;
  opts.recv_capacity_bytes = 1024;  // tiny receive window
  auto client = net.connect("bp:1", Deadline::after(1s), opts);
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(server.is_ok());
  const Bytes big(800, 0x55);
  ASSERT_TRUE(client.value()->send(big, Deadline::after(1s)).is_ok());
  // Second send exceeds the window; nobody drains -> must time out.
  auto s = client.value()->send(big, Deadline::after(50ms));
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  // Draining the first message frees the window.
  ASSERT_TRUE(server.value()->recv(Deadline::after(1s)).is_ok());
  EXPECT_TRUE(client.value()->send(big, Deadline::after(1s)).is_ok());
}

TEST(InProc, MessagesArriveInOrder) {
  InProcNetwork net;
  auto listener = net.listen("ord:1");
  auto client = net.connect("ord:1", Deadline::after(1s));
  auto server = listener.value()->accept(Deadline::after(1s));
  for (int i = 0; i < 100; ++i) {
    Bytes b(4);
    std::memcpy(b.data(), &i, 4);
    ASSERT_TRUE(client.value()->send(b, Deadline::after(1s)).is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto r = server.value()->recv(Deadline::after(1s));
    ASSERT_TRUE(r.is_ok());
    int got;
    std::memcpy(&got, r.value().data(), 4);
    EXPECT_EQ(got, i);
  }
}

TEST(InProc, StatsCountTraffic) {
  InProcNetwork net;
  auto listener = net.listen("st:1");
  auto client = net.connect("st:1", Deadline::after(1s));
  auto server = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(client.value()->send(Bytes(100, 1), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(client.value()->send(Bytes(50, 2), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(server.value()->recv(Deadline::after(1s)).is_ok());
  ASSERT_TRUE(server.value()->recv(Deadline::after(1s)).is_ok());
  const auto cs = client.value()->stats();
  const auto ss = server.value()->stats();
  EXPECT_EQ(cs.messages_sent, 2u);
  EXPECT_EQ(cs.bytes_sent, 150u);
  EXPECT_EQ(ss.messages_received, 2u);
  EXPECT_EQ(ss.bytes_received, 150u);
}

// ------------------------------------------------------------ Link model --

TEST(Link, LatencyDelaysDelivery) {
  InProcNetwork net;
  auto listener = net.listen("lat:1");
  ConnectOptions opts;
  opts.link.latency = 50ms;
  auto client = net.connect("lat:1", Deadline::after(1s), opts);
  auto server = listener.value()->accept(Deadline::after(1s));
  const auto t0 = common::Clock::now();
  ASSERT_TRUE(client.value()->send(bytes_of("delayed"), Deadline::after(1s)).is_ok());
  auto r = server.value()->recv(Deadline::after(1s));
  const auto elapsed = common::Clock::now() - t0;
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(elapsed, 45ms);
}

TEST(Link, InFlightMessageNotReceivableBeforeArrival) {
  InProcNetwork net;
  auto listener = net.listen("lat:2");
  ConnectOptions opts;
  opts.link.latency = 200ms;
  auto client = net.connect("lat:2", Deadline::after(1s), opts);
  auto server = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(client.value()->send(bytes_of("slow"), Deadline::after(1s)).is_ok());
  // A short-deadline recv must time out even though the message is queued.
  auto r = server.value()->recv(Deadline::after(20ms));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  // But it is delivered eventually.
  auto r2 = server.value()->recv(Deadline::after(1s));
  EXPECT_TRUE(r2.is_ok());
}

TEST(Link, BandwidthAddsTransmissionDelay) {
  InProcNetwork net;
  auto listener = net.listen("bw:1");
  ConnectOptions opts;
  opts.link.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s
  auto client = net.connect("bw:1", Deadline::after(1s), opts);
  auto server = listener.value()->accept(Deadline::after(1s));
  const Bytes payload(100'000, 7);  // 100 KB -> 100 ms at 1 MB/s
  const auto t0 = common::Clock::now();
  ASSERT_TRUE(client.value()->send(payload, Deadline::after(1s)).is_ok());
  auto r = server.value()->recv(Deadline::after(1s));
  const auto elapsed = common::Clock::now() - t0;
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(elapsed, 90ms);
  EXPECT_LT(elapsed, 600ms);
}

TEST(Link, DropProbabilityOneLosesEverything) {
  InProcNetwork net;
  auto listener = net.listen("dr:1");
  ConnectOptions opts;
  opts.link.drop_probability = 1.0;
  auto client = net.connect("dr:1", Deadline::after(1s), opts);
  auto server = listener.value()->accept(Deadline::after(1s));
  // Sends "succeed" (fire-and-forget semantics) but nothing arrives.
  ASSERT_TRUE(client.value()->send(bytes_of("gone"), Deadline::after(1s)).is_ok());
  auto r = server.value()->recv(Deadline::after(60ms));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST(Link, SchedulerSerializesBandwidth) {
  LinkModel m;
  m.bandwidth_bytes_per_sec = 1'000'000;
  LinkScheduler sched{m};
  common::TimePoint first, second;
  ASSERT_TRUE(sched.schedule(100'000, first));
  ASSERT_TRUE(sched.schedule(100'000, second));
  // The second message queues behind the first: ~100 ms later.
  EXPECT_GE(second - first, 90ms);
}

TEST(Link, PresetModelsAreSane) {
  EXPECT_GT(LinkModel::wan_transatlantic().latency,
            LinkModel::wan_europe().latency);
  EXPECT_GT(LinkModel::wan_europe().latency, LinkModel::lan().latency);
  EXPECT_GT(LinkModel::lan().bandwidth_bytes_per_sec,
            LinkModel::wan_transatlantic().bandwidth_bytes_per_sec);
}

// --------------------------------------------------------------- Multicast --

TEST(Multicast, FanOutReachesAllOtherMembers) {
  InProcNetwork net;
  auto a = net.join_group("venue/video");
  auto b = net.join_group("venue/video");
  auto c = net.join_group("venue/video");
  ASSERT_TRUE(a.is_ok() && b.is_ok() && c.is_ok());
  EXPECT_EQ(net.group_size("venue/video"), 3u);

  ASSERT_TRUE(a.value()->send(bytes_of("frame1"), Deadline::after(1s)).is_ok());
  auto rb = b.value()->recv(Deadline::after(1s));
  auto rc = c.value()->recv(Deadline::after(1s));
  ASSERT_TRUE(rb.is_ok());
  ASSERT_TRUE(rc.is_ok());
  EXPECT_EQ(text_of(rb.value()), "frame1");
  EXPECT_EQ(text_of(rc.value()), "frame1");
  // The sender does not hear its own message.
  auto ra = a.value()->recv(Deadline::after(30ms));
  EXPECT_FALSE(ra.is_ok());
}

TEST(Multicast, LeaveRemovesMember) {
  InProcNetwork net;
  auto a = net.join_group("g");
  auto b = net.join_group("g");
  b.value()->leave();
  EXPECT_EQ(net.group_size("g"), 1u);
  EXPECT_FALSE(b.value()->is_member());
  auto r = b.value()->recv(Deadline::after(10ms));
  EXPECT_EQ(r.status().code(), StatusCode::kClosed);
}

TEST(Multicast, SocketDestructorLeaves) {
  InProcNetwork net;
  auto a = net.join_group("g2");
  { auto b = net.join_group("g2"); EXPECT_EQ(net.group_size("g2"), 2u); }
  EXPECT_EQ(net.group_size("g2"), 1u);
}

TEST(Multicast, StatsCountTraffic) {
  InProcNetwork net;
  auto a = net.join_group("stats/g");
  auto b = net.join_group("stats/g");
  auto c = net.join_group("stats/g");
  ASSERT_TRUE(a.is_ok() && b.is_ok() && c.is_ok());
  ASSERT_TRUE(a.value()->send(Bytes(100, 1), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(a.value()->send(Bytes(50, 2), Deadline::after(1s)).is_ok());
  ASSERT_TRUE(b.value()->recv(Deadline::after(1s)).is_ok());
  ASSERT_TRUE(b.value()->recv(Deadline::after(1s)).is_ok());
  const auto sender = a.value()->stats();
  // One datagram per send, not one per fan-out copy.
  EXPECT_EQ(sender.messages_sent, 2u);
  EXPECT_EQ(sender.bytes_sent, 150u);
  EXPECT_EQ(sender.messages_received, 0u);
  const auto receiver = b.value()->stats();
  EXPECT_EQ(receiver.messages_received, 2u);
  EXPECT_EQ(receiver.bytes_received, 150u);
  EXPECT_EQ(receiver.messages_sent, 0u);
  // c never drained; its receive counters stay zero.
  EXPECT_EQ(c.value()->stats().messages_received, 0u);
}

TEST(Multicast, SlowMemberDoesNotBlockSender) {
  // Best-effort semantics: a member that never drains just misses frames.
  InProcNetwork net;
  auto sender = net.join_group("g3");
  auto sleepy = net.join_group("g3");
  const Bytes frame(1 << 20, 9);  // 1 MiB
  for (int i = 0; i < 200; ++i) {  // far beyond the 64 MiB default window
    const auto t0 = common::Clock::now();
    ASSERT_TRUE(sender.value()->send(frame, Deadline::after(1s)).is_ok());
    EXPECT_LT(common::Clock::now() - t0, 1s);
  }
  // sleepy can still read the earliest frames.
  auto r = sleepy.value()->recv(Deadline::after(1s));
  EXPECT_TRUE(r.is_ok());
}

// ------------------------------------------------------------------- TCP --

TEST(Tcp, LoopbackRoundTrip) {
  TcpNetwork net;
  auto listener = net.listen("0");  // kernel-assigned port
  ASSERT_TRUE(listener.is_ok());
  const std::string port = listener.value()->address();
  auto client = net.connect(port, Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  auto server = listener.value()->accept(Deadline::after(1s));
  ASSERT_TRUE(server.is_ok());

  ASSERT_TRUE(client.value()->send(bytes_of("over tcp"), Deadline::after(1s)).is_ok());
  auto r = server.value()->recv(Deadline::after(1s));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(text_of(r.value()), "over tcp");
}

TEST(Tcp, LargeMessageSurvivesFraming) {
  TcpNetwork net;
  auto listener = net.listen("0");
  const std::string port = listener.value()->address();
  auto client = net.connect(port, Deadline::after(1s));
  auto server = listener.value()->accept(Deadline::after(1s));
  Bytes big(3 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  std::thread sender([&] {
    ASSERT_TRUE(client.value()->send(big, Deadline::after(5s)).is_ok());
  });
  auto r = server.value()->recv(Deadline::after(5s));
  sender.join();
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), big);
}

TEST(Tcp, ConnectToClosedPortFails) {
  TcpNetwork net;
  auto r = net.connect("1", Deadline::after(100ms));  // port 1: refused
  EXPECT_FALSE(r.is_ok());
}

TEST(Tcp, RecvDeadlineExpires) {
  TcpNetwork net;
  auto listener = net.listen("0");
  const std::string port = listener.value()->address();
  auto client = net.connect(port, Deadline::after(1s));
  auto server = listener.value()->accept(Deadline::after(1s));
  auto r = server.value()->recv(Deadline::after(50ms));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST(Tcp, PeerCloseYieldsClosed) {
  TcpNetwork net;
  auto listener = net.listen("0");
  const std::string port = listener.value()->address();
  auto client = net.connect(port, Deadline::after(1s));
  auto server = listener.value()->accept(Deadline::after(1s));
  client.value()->close();
  auto r = server.value()->recv(Deadline::after(1s));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kClosed);
}

TEST(Tcp, HostPortAddressingRoundTrips) {
  // A named host survives listen() -> address() -> connect() in the same
  // host:port form, and the historical bare-port form keeps dialing the
  // same socket.
  TcpNetwork net;
  auto listener = net.listen("127.0.0.1:0");
  ASSERT_TRUE(listener.is_ok());
  const std::string address = listener.value()->address();
  ASSERT_EQ(address.rfind("127.0.0.1:", 0), 0u) << address;
  const std::string port = address.substr(address.rfind(':') + 1);
  EXPECT_NE(std::stoi(port), 0);

  for (const std::string& dial :
       {address, "localhost:" + port, port}) {
    auto client = net.connect(dial, Deadline::after(1s));
    ASSERT_TRUE(client.is_ok()) << dial;
    auto server = listener.value()->accept(Deadline::after(1s));
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(
        client.value()->send(bytes_of(dial), Deadline::after(1s)).is_ok());
    auto r = server.value()->recv(Deadline::after(1s));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(text_of(r.value()), dial);
  }
}

TEST(Tcp, BarePortListenKeepsHistoricalForm) {
  // Loopback callers feed the returned address straight back into
  // connect(), so a bare-port listen must keep returning bare digits.
  TcpNetwork net;
  auto listener = net.listen("0");
  ASSERT_TRUE(listener.is_ok());
  const std::string address = listener.value()->address();
  EXPECT_EQ(address.find(':'), std::string::npos) << address;
  EXPECT_EQ(address.find_first_not_of("0123456789"), std::string::npos)
      << address;
}

TEST(Tcp, AnyInterfaceBindAcceptsLoopbackDials) {
  // "0.0.0.0:PORT" binds every interface — the multi-host loadgen form —
  // and a loopback dial to the kernel-assigned port still lands on it.
  TcpNetwork net;
  auto listener = net.listen("0.0.0.0:0");
  ASSERT_TRUE(listener.is_ok());
  const std::string address = listener.value()->address();
  ASSERT_EQ(address.rfind("0.0.0.0:", 0), 0u) << address;
  const std::string port = address.substr(address.rfind(':') + 1);
  auto client = net.connect("127.0.0.1:" + port, Deadline::after(1s));
  ASSERT_TRUE(client.is_ok());
  EXPECT_TRUE(listener.value()->accept(Deadline::after(1s)).is_ok());
}

TEST(Tcp, MalformedAddressesAreRejectedBeforeTheWire) {
  // Bad host:port forms fail fast with kInvalidArgument instead of a dial
  // timeout or an errno surprise.
  TcpNetwork net;
  for (const std::string& bad :
       {std::string{""}, std::string{"abc"}, std::string{"12x4"},
        std::string{"99999"}, std::string{"10.0.0.7:"},
        std::string{"not-a-host:80"}, std::string{"1.2.3:80"},
        std::string{"1.2.3.4:port"}}) {
    auto listener = net.listen(bad);
    ASSERT_FALSE(listener.is_ok()) << bad;
    EXPECT_EQ(listener.status().code(), StatusCode::kInvalidArgument) << bad;
    auto conn = net.connect(bad, Deadline::after(100ms));
    ASSERT_FALSE(conn.is_ok()) << bad;
    EXPECT_EQ(conn.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // Port 0 is a valid ephemeral bind but never a dialable peer.
  EXPECT_FALSE(net.connect("127.0.0.1:0", Deadline::after(100ms)).is_ok());
}

// -------------------------------------------------- Transport parity --
//
// The deadline/close contract must hold identically for both transports:
// a send blocked on a full receive window returns kTimeout by its deadline,
// and close() wakes a blocked send with kClosed. Loadgen soaks lean on
// exactly these semantics when slow consumers push senders into the window.

using testutil::TransportPair;

struct ParityCase {
  const char* name;
  TransportPair (*make)();
  /// Per-send chunk: must fit the transport's window (an inproc message
  /// larger than recv_capacity_bytes can never be accepted) yet fill it in
  /// few sends (TCP loopback buffers autotune to megabytes).
  std::size_t chunk_bytes;
};

// Shared spinup lives in tests/util.hpp; these shims pin the no-argument
// signature ParityCase stores.
TransportPair make_inproc_pair() { return testutil::make_inproc_pair(); }

TransportPair make_tcp_pair() { return testutil::make_tcp_pair(); }

class TransportParity : public ::testing::TestWithParam<ParityCase> {
 protected:
  /// Sends chunks nobody drains until one hits the window and times out.
  /// Returns false if the transport absorbed everything (test setup bug).
  static bool fill_until_blocked(Connection& conn, std::size_t chunk_bytes) {
    const Bytes chunk(chunk_bytes, 0x5a);
    for (int i = 0; i < 64; ++i) {
      const auto s = conn.send(chunk, Deadline::after(50ms));
      if (s.code() == StatusCode::kTimeout) return true;
      if (!s.is_ok()) return false;
    }
    return false;
  }
};

TEST_P(TransportParity, BlockedSendTimesOutByDeadline) {
  TransportPair pair = GetParam().make();
  const Bytes chunk(GetParam().chunk_bytes, 0xa5);
  ASSERT_TRUE(fill_until_blocked(*pair.client, chunk.size()));
  // The window is full: a fresh send must block and then return kTimeout
  // close to its deadline — not early, not unboundedly late.
  const auto t0 = common::Clock::now();
  const auto s = pair.client->send(chunk, Deadline::after(200ms));
  const auto elapsed = common::Clock::now() - t0;
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_GE(elapsed, 180ms);
  EXPECT_LT(elapsed, 2s);
}

TEST_P(TransportParity, CloseWakesBlockedSend) {
  TransportPair pair = GetParam().make();
  const Bytes chunk(GetParam().chunk_bytes, 0xa5);
  ASSERT_TRUE(fill_until_blocked(*pair.client, chunk.size()));
  std::thread closer([&] {
    std::this_thread::sleep_for(100ms);
    pair.client->close();
  });
  const auto t0 = common::Clock::now();
  const auto s = pair.client->send(chunk, Deadline::after(30s));
  const auto elapsed = common::Clock::now() - t0;
  closer.join();
  EXPECT_EQ(s.code(), StatusCode::kClosed);
  EXPECT_LT(elapsed, 5s);  // woken by close(), not by the deadline
}

TEST_P(TransportParity, TimedOutSendsDoNotCorruptFraming) {
  // A send abandoned at its deadline mid-message must not desynchronize
  // the stream: every message the receiver does get has to arrive intact
  // (TCP stashes the unsent tail and flushes it before the next message;
  // inproc messages are all-or-nothing).
  TransportPair pair = GetParam().make();
  const Bytes chunk(GetParam().chunk_bytes, 0xa5);
  ASSERT_TRUE(fill_until_blocked(*pair.client, chunk.size()));
  // Several more sends time out against the full window; with a partially
  // written message on the wire this is where framing would break.
  for (int i = 0; i < 3; ++i) {
    (void)pair.client->send(chunk, Deadline::after(30ms));
  }
  // Drain everything, then ship a distinct marker message after the chaos.
  const Bytes marker{1, 2, 3};
  std::thread drainer([&] {
    for (;;) {
      auto raw = pair.server->recv(Deadline::after(2s));
      if (!raw.is_ok()) break;  // timeout: stream drained (or closed)
      // Every delivered message is bit-exact: either one of the uniform
      // fill chunks (fill_until_blocked uses 0x5a, ours 0xa5) or the
      // marker. A garbled length prefix or sheared payload fails here.
      const Bytes& m = raw.value();
      const bool uniform_chunk =
          m.size() == chunk.size() &&
          std::all_of(m.begin(), m.end(),
                      [&](std::uint8_t b) { return b == m.front(); });
      ASSERT_TRUE(m == marker || uniform_chunk)
          << "framing corrupted: got " << m.size() << " bytes";
      if (m == marker) return;  // marker arrived intact
    }
    FAIL() << "marker message never arrived";
  });
  EXPECT_TRUE(pair.client->send(marker, Deadline::after(10s)).is_ok());
  drainer.join();
  pair.client->close();
  pair.server->close();
}

TEST_P(TransportParity, SendManyDeliversAllInOrder) {
  // One send_many call covers many variously-sized messages (several
  // vectored-write batches over TCP); the receiver must observe every one,
  // bit-exact and in order.
  TransportPair pair = GetParam().make();
  constexpr std::size_t kCount = 40;
  std::vector<Bytes> messages;
  std::vector<common::ByteSpan> spans;
  for (std::size_t i = 0; i < kCount; ++i) {
    messages.push_back(Bytes((i * 37) % 1500 + (i % 3 == 0 ? 0 : 1),
                             static_cast<std::uint8_t>(i)));
    spans.push_back(messages.back());
  }
  std::size_t sent = 0;
  ASSERT_TRUE(pair.client
                  ->send_many(std::span<const common::ByteSpan>(spans),
                              Deadline::after(5s), sent)
                  .is_ok());
  EXPECT_EQ(sent, kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    auto got = pair.server->recv(Deadline::after(2s));
    ASSERT_TRUE(got.is_ok()) << "message " << i;
    EXPECT_EQ(got.value(), messages[i]) << "message " << i;
  }
}

TEST_P(TransportParity, SendManyAbortMidBatchKeepsFramingAndSentCount) {
  // A deadline abort anywhere inside a send_many batch must leave the
  // length-prefixed stream well-formed: the receiver observes an exact
  // prefix of the batch (TCP completes a partially-written message via the
  // stashed tail ahead of later traffic), every delivered message is
  // bit-exact, and `sent` never overcounts what the prefix shows.
  TransportPair pair = GetParam().make();
  const std::size_t chunk_bytes = GetParam().chunk_bytes;
  ASSERT_TRUE(fill_until_blocked(*pair.client, chunk_bytes));
  constexpr std::size_t kBatch = 8;
  std::vector<Bytes> batch;
  std::vector<common::ByteSpan> spans;
  for (std::size_t i = 0; i < kBatch; ++i) {
    batch.push_back(
        Bytes(chunk_bytes, static_cast<std::uint8_t>(0xb0 + i)));
    spans.push_back(batch.back());
  }
  // Nobody is draining: the batch must abort against the full window.
  std::size_t sent = 0;
  const auto s = pair.client->send_many(
      std::span<const common::ByteSpan>(spans), Deadline::after(100ms), sent);
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_LT(sent, kBatch);
  // Drain everything while a trailing marker flushes the stashed tail (the
  // tail may span a message boundary mid-batch) ahead of itself.
  const Bytes marker{1, 2, 3};
  std::vector<std::uint8_t> batch_tones_seen;
  std::thread drainer([&] {
    for (;;) {
      auto raw = pair.server->recv(Deadline::after(2s));
      if (!raw.is_ok()) break;  // timeout: stream drained (or closed)
      const Bytes& m = raw.value();
      if (m == marker) return;
      // Every delivered message is bit-exact: a uniform fill chunk
      // (fill_until_blocked uses 0x5a) or one whole batch message.
      ASSERT_EQ(m.size(), chunk_bytes) << "sheared message";
      ASSERT_TRUE(std::all_of(m.begin(), m.end(),
                              [&](std::uint8_t b) { return b == m.front(); }))
          << "mixed message contents: framing corrupted";
      if (m.front() >= 0xb0) batch_tones_seen.push_back(m.front());
    }
    FAIL() << "marker message never arrived";
  });
  EXPECT_TRUE(pair.client->send(marker, Deadline::after(30s)).is_ok());
  drainer.join();
  // The delivered batch messages form an exact prefix, in order. The
  // message the abort landed inside completes via the tail flush, so the
  // prefix may exceed `sent` by exactly one.
  ASSERT_GE(batch_tones_seen.size(), sent);
  ASSERT_LE(batch_tones_seen.size(), sent + 1);
  for (std::size_t i = 0; i < batch_tones_seen.size(); ++i) {
    EXPECT_EQ(batch_tones_seen[i], 0xb0 + i);
  }
  pair.client->close();
  pair.server->close();
}

TEST_P(TransportParity, SendManyCarriesEmptyMessages) {
  TransportPair pair = GetParam().make();
  const Bytes a(3, 0x11);
  const Bytes empty;
  const Bytes b(5, 0x22);
  const common::ByteSpan spans[3] = {a, empty, b};
  std::size_t sent = 0;
  ASSERT_TRUE(pair.client
                  ->send_many(std::span<const common::ByteSpan>(spans),
                              Deadline::after(2s), sent)
                  .is_ok());
  EXPECT_EQ(sent, 3u);
  EXPECT_EQ(pair.server->recv(Deadline::after(2s)).value(), a);
  EXPECT_EQ(pair.server->recv(Deadline::after(2s)).value().size(), 0u);
  EXPECT_EQ(pair.server->recv(Deadline::after(2s)).value(), b);
}

TEST_P(TransportParity, DrainingReopensTheWindow) {
  TransportPair pair = GetParam().make();
  const Bytes chunk(GetParam().chunk_bytes, 0xa5);
  ASSERT_TRUE(fill_until_blocked(*pair.client, chunk.size()));
  // A reader draining the peer unblocks the sender before its deadline.
  std::thread drainer([&] {
    while (pair.server->recv(Deadline::after(1s)).is_ok()) {
    }
  });
  EXPECT_TRUE(pair.client->send(chunk, Deadline::after(10s)).is_ok());
  pair.client->close();
  drainer.join();
}

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportParity,
    ::testing::Values(ParityCase{"InProc", &make_inproc_pair, 16u << 10},
                      ParityCase{"Tcp", &make_tcp_pair, 1u << 20}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace cs::net
