#include "ag/media.hpp"

#include "common/log.hpp"
#include "net/fanout_sink.hpp"

namespace cs::ag {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
}

Result<MediaStream> MediaStream::join(net::InProcNetwork& net,
                                      const std::string& group,
                                      const net::LinkModel& link) {
  auto socket = net.join_group(group, link);
  if (!socket.is_ok()) return socket.status();
  MediaStream stream;
  stream.socket_ = std::move(socket).value();
  return stream;
}

Status MediaStream::send_frame(const viz::Image& frame) {
  if (!socket_) return Status{StatusCode::kClosed, "left the group"};
  const common::Bytes payload = viz::compress_frame(frame);
  Status s = socket_->send(payload, Deadline::expired());
  if (s.is_ok()) {
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  }
  return s;
}

Result<viz::Image> MediaStream::receive_frame(Deadline deadline) {
  if (!socket_) return Status{StatusCode::kClosed, "left the group"};
  auto raw = socket_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  return viz::decompress_frame(raw.value());
}

void MediaStream::leave() {
  if (socket_) socket_->leave();
  socket_.reset();
}

// ---------------------------------------------------------------------------
// UnicastBridge
// ---------------------------------------------------------------------------

Result<std::unique_ptr<UnicastBridge>> UnicastBridge::start(
    net::InProcNetwork& net, const Options& options) {
  return start(net, net, options);
}

Result<std::unique_ptr<UnicastBridge>> UnicastBridge::start(
    net::InProcNetwork& group_net, net::Network& client_net,
    const Options& options) {
  auto socket = group_net.join_group(options.group);
  if (!socket.is_ok()) return socket.status();
  auto listener = client_net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<UnicastBridge> bridge{new UnicastBridge};
  bridge->options_ = options;
  bridge->socket_ = std::move(socket).value();
  bridge->listener_ = std::move(listener).value();
  UnicastBridge* self = bridge.get();
  common::ShardedFanout::Options relay_options;
  relay_options.shards = options.relay_shards;
  relay_options.queue_capacity =
      options.client_queue_frames == 0 ? 1 : options.client_queue_frames;
  bridge->relay_ = std::make_unique<common::ShardedFanout>(
      relay_options, [self](std::uint64_t id) { self->drop_client(id); });
  if (options.use_event_host) {
    net::EventHost::Options host_options;
    host_options.pollers = options.event_host_pollers;
    host_options.queue_capacity = relay_options.queue_capacity;
    auto host = net::EventHost::start(host_options);
    if (host.is_ok()) {
      bridge->event_host_ = std::move(host).value();
    } else {
      CS_LOG_WARN("ag.bridge") << "event host unavailable, using pump "
                                  "threads: "
                               << host.status().to_string();
    }
  }
  bridge->group_thread_ =
      std::jthread([self](std::stop_token st) { self->group_pump(st); });
  return bridge;
}

UnicastBridge::~UnicastBridge() { stop(); }

void UnicastBridge::stop() {
  if (stopped_.exchange(true)) return;
  group_thread_.request_stop();
  if (listener_) listener_->close();
  if (socket_) socket_->leave();
  // Join the pump before tearing down clients_: it must not be running when
  // the mutex and maps die (member destruction order would otherwise race).
  if (group_thread_.joinable()) group_thread_.join();
  // Stop the relay workers next: afterwards no sink runs and no on_dead
  // callback can re-enter drop_client(). Same for the event host: its
  // pollers may be delivering ingress or running on_close (both re-enter
  // drop_client, which only takes mutex_ — not held here).
  if (relay_) relay_->stop();
  if (event_host_) event_host_->stop();
  std::map<std::uint64_t, net::ConnectionPtr> clients;
  std::vector<ClientThread> threads;
  {
    std::scoped_lock lock(mutex_);
    clients = std::move(clients_);
    clients_.clear();
    threads = std::move(client_threads_);
  }
  for (auto& [id, conn] : clients) conn->close();
  for (auto& ct : threads) {
    ct.thread.request_stop();
    if (ct.thread.joinable()) ct.thread.join();
  }
}

std::size_t UnicastBridge::client_count() const {
  std::scoped_lock lock(mutex_);
  return clients_.size();
}

std::string UnicastBridge::address() const {
  return listener_ ? listener_->address() : options_.address;
}

common::FanoutStats UnicastBridge::relay_stats() const {
  return relay_ ? relay_->stats() : common::FanoutStats{};
}

net::EventHostStats UnicastBridge::host_stats() const {
  return event_host_ ? event_host_->stats() : net::EventHostStats{};
}

std::size_t UnicastBridge::service_threads() const {
  std::size_t pumps = 0;
  {
    std::scoped_lock lock(mutex_);
    for (const auto& ct : client_threads_) {
      if (!ct.done->load()) ++pumps;
    }
  }
  return (group_thread_.joinable() ? 1 : 0) +
         (relay_ ? relay_->shard_count() : 0) +
         (event_host_ ? event_host_->poller_count() : 0) + pumps;
}

void UnicastBridge::register_client(net::ConnectionPtr conn) {
  const bool hosted = event_host_ != nullptr && conn->native_handle() >= 0;
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live client
    conn->close();
    return;
  }
  // Reap finished pumps so churn doesn't grow the vector without bound.
  // A set `done` flag means the thread is past its last mutex_ use, so
  // joining it (in ~jthread) while holding the lock cannot deadlock.
  std::erase_if(client_threads_,
                [](const ClientThread& ct) { return ct.done->load(); });
  const std::uint64_t id = next_id_++;
  clients_[id] = conn;
  if (hosted) {
    // The poller owns ingress and egress; no pump thread, no relay
    // subscription. host() only registers with epoll — callbacks can't run
    // under this lock, so registry insert and hosting are atomic here too.
    const bool ok = event_host_->host(
        id, std::move(conn),
        [this](std::uint64_t cid, common::Bytes raw) {
          relay_from_client(cid, std::move(raw));
        },
        [this](std::uint64_t cid, const common::Status&) {
          drop_client(cid);
        });
    if (!ok) {
      auto it = clients_.find(id);
      it->second->close();
      clients_.erase(it);
    }
    return;
  }
  // Registry insert and relay subscription are atomic under mutex_, and
  // the pump starts only after both: a drop_client racing in from any side
  // (pump recv, shard-worker on_dead) always observes either neither or
  // both registrations, never a half-registered client. Holding mutex_
  // across add() is safe — add() never invokes sinks or on_dead. The shard
  // worker owns all sends on the connection; its drained burst goes out as
  // one vectored send_many.
  relay_->add(id, net::batched_connection_sink(std::move(conn),
                                               options_.send_deadline));
  auto done = std::make_shared<std::atomic<bool>>(false);
  client_threads_.push_back(
      {done, std::jthread([this, id, done](std::stop_token cst) {
         client_pump(cst, id);
         done->store(true);
       })});
}

void UnicastBridge::drop_client(std::uint64_t id) {
  relay_->remove(id);  // idempotent; no further frames are queued
  // Idempotent for legacy clients; for hosted ones this closes the socket
  // and drops the poller registration (safe from inside a poller callback).
  if (event_host_) event_host_->unhost(id);
  net::ConnectionPtr conn;
  {
    std::scoped_lock lock(mutex_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return;  // raced with another dropper: done
    conn = std::move(it->second);
    clients_.erase(it);
  }
  conn->close();  // wakes the client pump, which exits on kClosed
}

void UnicastBridge::group_pump(const std::stop_token& st) {
  // Multicast -> every unicast client. This thread is also the only place
  // new clients are accepted: draining the backlog here — after every recv,
  // before any relay — guarantees a client whose connect() completed before
  // a frame was sent cannot miss that frame (a second accept thread would
  // reopen that window by holding popped-but-unregistered connections).
  // The pump never touches a client connection: it wraps the frame into one
  // shared FramePtr and enqueues, and the relay workers deliver.
  while (!st.stop_requested()) {
    auto message = socket_->recv(Deadline::after(kPumpSlice));
    for (;;) {
      auto pending = listener_->accept(Deadline::expired());
      if (!pending.is_ok()) break;
      register_client(std::move(pending).value());
    }
    if (!message.is_ok()) {
      if (message.status().code() == StatusCode::kClosed) return;
      continue;
    }
    auto frame = common::make_frame(std::move(message).value());
    relay_->publish(frame, common::OverflowPolicy::kDropOldest);
    if (event_host_) {
      event_host_->publish(std::move(frame),
                           common::OverflowPolicy::kDropOldest);
    }
  }
}

void UnicastBridge::client_pump(const std::stop_token& st, std::uint64_t id) {
  // Unicast client -> multicast group (and explicitly to the *other*
  // unicast clients: multicast loopback excludes the sender socket, and the
  // relay excludes the frame's own origin). Like the group pump, this
  // thread only enqueues — delivery to siblings happens on their shard
  // workers.
  net::ConnectionPtr conn;
  {
    std::scoped_lock lock(mutex_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    conn = it->second;
  }
  while (!st.stop_requested()) {
    auto message = conn->recv(Deadline::after(kPumpSlice));
    if (!message.is_ok()) {
      if (message.status().code() == StatusCode::kClosed) {
        drop_client(id);
        return;
      }
      continue;
    }
    relay_from_client(id, std::move(message).value());
  }
}

void UnicastBridge::relay_from_client(std::uint64_t id,
                                      common::Bytes message) {
  // Runs on the client's pump thread or — for hosted clients — the event
  // host poller. Either way it only enqueues: the multicast send is
  // best-effort non-blocking and both publishes hand frames to queues.
  (void)socket_->send(message, Deadline::expired());
  auto frame = common::make_frame(std::move(message));
  relay_->publish_except(
      id, common::OutboundQueue::Item{
              frame, common::OverflowPolicy::kDropOldest, nullptr});
  if (event_host_) {
    event_host_->publish_except(
        id, common::OutboundQueue::Item{
                std::move(frame), common::OverflowPolicy::kDropOldest,
                nullptr});
  }
}

}  // namespace cs::ag
