#include "unicore/upl.hpp"

namespace cs::unicore {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

void put_string(Bytes& out, std::string_view s) {
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()),
                                     ByteOrder::kBig);
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(Bytes& out, ByteSpan s) {
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()),
                                     ByteOrder::kBig);
  out.insert(out.end(), s.begin(), s.end());
}

Status get_string(ByteSpan& in, std::string& out) {
  if (in.size() < 4) return Status{StatusCode::kProtocolError, "truncated"};
  const auto n = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
  in = in.subspan(4);
  if (in.size() < n) return Status{StatusCode::kProtocolError, "truncated"};
  out.assign(reinterpret_cast<const char*>(in.data()), n);
  in = in.subspan(n);
  return Status::ok();
}

Status get_bytes(ByteSpan& in, Bytes& out) {
  if (in.size() < 4) return Status{StatusCode::kProtocolError, "truncated"};
  const auto n = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
  in = in.subspan(4);
  if (in.size() < n) return Status{StatusCode::kProtocolError, "truncated"};
  out.assign(in.begin(), in.begin() + n);
  in = in.subspan(n);
  return Status::ok();
}

}  // namespace

Bytes encode_upl_request(const UplRequest& request) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(request.op));
  put_string(out, request.identity.subject);
  put_string(out, request.identity.fingerprint);
  put_string(out, request.vsite);
  put_string(out, request.job_id);
  put_string(out, request.text);
  put_bytes(out, request.binary);
  return out;
}

Result<UplRequest> decode_upl_request(ByteSpan raw) {
  if (raw.empty()) return Status{StatusCode::kProtocolError, "empty request"};
  UplRequest r;
  if (raw[0] < 1 || raw[0] > 6) {
    return Status{StatusCode::kProtocolError, "bad UPL op"};
  }
  r.op = static_cast<UplOp>(raw[0]);
  ByteSpan in = raw.subspan(1);
  if (auto s = get_string(in, r.identity.subject); !s.is_ok()) return s;
  if (auto s = get_string(in, r.identity.fingerprint); !s.is_ok()) return s;
  if (auto s = get_string(in, r.vsite); !s.is_ok()) return s;
  if (auto s = get_string(in, r.job_id); !s.is_ok()) return s;
  if (auto s = get_string(in, r.text); !s.is_ok()) return s;
  if (auto s = get_bytes(in, r.binary); !s.is_ok()) return s;
  return r;
}

Bytes encode_upl_response(const UplResponse& response) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(response.status.code()));
  put_string(out, response.status.message());
  put_string(out, response.text);
  put_bytes(out, response.binary);
  out.push_back(response.has_outcome ? 1 : 0);
  if (response.has_outcome) {
    out.push_back(static_cast<std::uint8_t>(response.outcome.state));
    put_string(out, response.outcome.stdout_text);
    put_string(out, response.outcome.error_text);
    common::append_uint<std::uint32_t>(
        out, static_cast<std::uint32_t>(response.outcome.exported_files.size()),
        ByteOrder::kBig);
    for (const auto& [name, content] : response.outcome.exported_files) {
      put_string(out, name);
      put_string(out, content);
    }
  }
  return out;
}

Result<UplResponse> decode_upl_response(ByteSpan raw) {
  if (raw.empty()) return Status{StatusCode::kProtocolError, "empty response"};
  UplResponse r;
  const auto code = raw[0];
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Status{StatusCode::kProtocolError, "bad status code"};
  }
  ByteSpan in = raw.subspan(1);
  std::string message;
  if (auto s = get_string(in, message); !s.is_ok()) return s;
  r.status = Status{static_cast<StatusCode>(code), std::move(message)};
  if (auto s = get_string(in, r.text); !s.is_ok()) return s;
  if (auto s = get_bytes(in, r.binary); !s.is_ok()) return s;
  if (in.empty()) return Status{StatusCode::kProtocolError, "truncated"};
  r.has_outcome = (in[0] == 1);
  in = in.subspan(1);
  if (r.has_outcome) {
    if (in.empty()) return Status{StatusCode::kProtocolError, "truncated"};
    if (in[0] > static_cast<std::uint8_t>(JobState::kFailed)) {
      return Status{StatusCode::kProtocolError, "bad job state"};
    }
    r.outcome.state = static_cast<JobState>(in[0]);
    in = in.subspan(1);
    if (auto s = get_string(in, r.outcome.stdout_text); !s.is_ok()) return s;
    if (auto s = get_string(in, r.outcome.error_text); !s.is_ok()) return s;
    if (in.size() < 4) return Status{StatusCode::kProtocolError, "truncated"};
    const auto n = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
    in = in.subspan(4);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string name, content;
      if (auto s = get_string(in, name); !s.is_ok()) return s;
      if (auto s = get_string(in, content); !s.is_ok()) return s;
      r.outcome.exported_files.emplace(std::move(name), std::move(content));
    }
  }
  return r;
}

}  // namespace cs::unicore
