#include "covise/dataobject.hpp"

#include <cstring>

namespace cs::covise {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

constexpr std::uint8_t kTagNone = 0;
constexpr std::uint8_t kTagGrid = 1;
constexpr std::uint8_t kTagGeometry = 2;
constexpr std::uint8_t kTagImage = 3;
constexpr std::uint8_t kTagText = 4;

void put_u32(Bytes& out, std::uint32_t v) {
  common::append_uint<std::uint32_t>(out, v, ByteOrder::kBig);
}

void put_string(Bytes& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_raw(Bytes& out, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + size);
}

struct Reader {
  ByteSpan in;
  bool failed = false;

  std::uint32_t u32() {
    if (in.size() < 4) {
      failed = true;
      return 0;
    }
    const auto v = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
    in = in.subspan(4);
    return v;
  }

  std::string str() {
    const auto n = u32();
    if (failed || in.size() < n) {
      failed = true;
      return {};
    }
    std::string s{reinterpret_cast<const char*>(in.data()), n};
    in = in.subspan(n);
    return s;
  }

  bool raw(void* out, std::size_t size) {
    if (in.size() < size) {
      failed = true;
      return false;
    }
    std::memcpy(out, in.data(), size);
    in = in.subspan(size);
    return true;
  }
};

}  // namespace

std::size_t DataObject::byte_size() const {
  std::size_t size = name_.size();
  if (const auto* g = as<UniformGridData>()) {
    size += g->values.size() * sizeof(float) + 32;
  } else if (const auto* m = as<GeometryData>()) {
    size += m->mesh.byte_size() + 3;
  } else if (const auto* i = as<ImageData>()) {
    size += i->image.byte_size();
  } else if (const auto* t = as<std::string>()) {
    size += t->size();
  }
  for (const auto& [k, v] : attributes_) size += k.size() + v.size();
  return size;
}

Bytes DataObject::encode() const {
  Bytes out;
  put_string(out, name_);
  put_u32(out, static_cast<std::uint32_t>(attributes_.size()));
  for (const auto& [k, v] : attributes_) {
    put_string(out, k);
    put_string(out, v);
  }
  if (const auto* g = as<UniformGridData>()) {
    out.push_back(kTagGrid);
    put_u32(out, static_cast<std::uint32_t>(g->nx));
    put_u32(out, static_cast<std::uint32_t>(g->ny));
    put_u32(out, static_cast<std::uint32_t>(g->nz));
    put_raw(out, &g->origin, sizeof(g->origin));
    put_raw(out, &g->spacing, sizeof(g->spacing));
    put_raw(out, g->values.data(), g->values.size() * sizeof(float));
  } else if (const auto* m = as<GeometryData>()) {
    out.push_back(kTagGeometry);
    put_u32(out, static_cast<std::uint32_t>(m->mesh.vertices.size()));
    put_raw(out, m->mesh.vertices.data(),
            m->mesh.vertices.size() * sizeof(common::Vec3));
    put_u32(out, static_cast<std::uint32_t>(m->mesh.triangles.size()));
    put_raw(out, m->mesh.triangles.data(),
            m->mesh.triangles.size() * sizeof(viz::Triangle));
    out.push_back(m->color.r);
    out.push_back(m->color.g);
    out.push_back(m->color.b);
  } else if (const auto* i = as<ImageData>()) {
    out.push_back(kTagImage);
    put_u32(out, static_cast<std::uint32_t>(i->image.width()));
    put_u32(out, static_cast<std::uint32_t>(i->image.height()));
    put_raw(out, i->image.pixels().data(), i->image.byte_size());
  } else if (const auto* t = as<std::string>()) {
    out.push_back(kTagText);
    put_string(out, *t);
  } else {
    out.push_back(kTagNone);
  }
  return out;
}

Result<DataObject> DataObject::decode(ByteSpan data) {
  Reader r{data};
  DataObject obj;
  obj.name_ = r.str();
  const auto nattrs = r.u32();
  for (std::uint32_t i = 0; i < nattrs && !r.failed; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    if (!r.failed) obj.attributes_[std::move(k)] = std::move(v);
  }
  if (r.failed || r.in.empty()) {
    return Status{StatusCode::kProtocolError, "data object truncated"};
  }
  const std::uint8_t tag = r.in[0];
  r.in = r.in.subspan(1);
  switch (tag) {
    case kTagNone:
      obj.payload_ = std::monostate{};
      break;
    case kTagGrid: {
      UniformGridData g;
      g.nx = static_cast<int>(r.u32());
      g.ny = static_cast<int>(r.u32());
      g.nz = static_cast<int>(r.u32());
      if (!r.raw(&g.origin, sizeof(g.origin))) break;
      if (!r.raw(&g.spacing, sizeof(g.spacing))) break;
      if (g.nx < 0 || g.ny < 0 || g.nz < 0 ||
          static_cast<std::size_t>(g.nx) * static_cast<std::size_t>(g.ny) *
                  static_cast<std::size_t>(g.nz) * sizeof(float) >
              r.in.size()) {
        r.failed = true;
        break;
      }
      g.values.resize(static_cast<std::size_t>(g.nx) *
                      static_cast<std::size_t>(g.ny) *
                      static_cast<std::size_t>(g.nz));
      r.raw(g.values.data(), g.values.size() * sizeof(float));
      obj.payload_ = std::move(g);
      break;
    }
    case kTagGeometry: {
      GeometryData m;
      const auto nv = r.u32();
      if (r.failed || nv * sizeof(common::Vec3) > r.in.size()) {
        r.failed = true;
        break;
      }
      m.mesh.vertices.resize(nv);
      r.raw(m.mesh.vertices.data(), nv * sizeof(common::Vec3));
      const auto nt = r.u32();
      if (r.failed || nt * sizeof(viz::Triangle) > r.in.size()) {
        r.failed = true;
        break;
      }
      m.mesh.triangles.resize(nt);
      r.raw(m.mesh.triangles.data(), nt * sizeof(viz::Triangle));
      std::uint8_t rgb[3];
      if (r.raw(rgb, 3)) m.color = viz::Color{rgb[0], rgb[1], rgb[2]};
      for (const auto& t : m.mesh.triangles) {
        if (t.a >= nv || t.b >= nv || t.c >= nv) {
          r.failed = true;
          break;
        }
      }
      obj.payload_ = std::move(m);
      break;
    }
    case kTagImage: {
      const auto w = r.u32();
      const auto h = r.u32();
      if (r.failed || w > 16384 || h > 16384 ||
          static_cast<std::size_t>(w) * h * 3 > r.in.size()) {
        r.failed = true;
        break;
      }
      ImageData img{viz::Image(static_cast<int>(w), static_cast<int>(h))};
      r.raw(img.image.pixels().data(), img.image.byte_size());
      obj.payload_ = std::move(img);
      break;
    }
    case kTagText: {
      obj.payload_ = r.str();
      break;
    }
    default:
      return Status{StatusCode::kProtocolError, "unknown payload tag"};
  }
  if (r.failed) {
    return Status{StatusCode::kProtocolError, "data object truncated"};
  }
  return obj;
}

}  // namespace cs::covise
