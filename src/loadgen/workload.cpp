#include "loadgen/workload.hpp"

namespace cs::loadgen {

using common::Result;
using common::Status;
using common::StatusCode;

std::string_view to_string(Pattern pattern) noexcept {
  switch (pattern) {
    case Pattern::kPush: return "push";
    case Pattern::kPull: return "pull";
    case Pattern::kDuplex: return "duplex";
    case Pattern::kBurst: return "burst";
  }
  return "unknown";
}

Result<Pattern> parse_pattern(std::string_view text) {
  if (text == "push") return Pattern::kPush;
  if (text == "pull") return Pattern::kPull;
  if (text == "duplex") return Pattern::kDuplex;
  if (text == "burst") return Pattern::kBurst;
  return Status{StatusCode::kInvalidArgument,
                "unknown pattern: " + std::string(text)};
}

Status Workload::validate() const {
  if (connections == 0) {
    return Status{StatusCode::kInvalidArgument, "connections must be >= 1"};
  }
  if (duration <= common::Duration::zero()) {
    return Status{StatusCode::kInvalidArgument, "duration must be positive"};
  }
  if (min_payload > max_payload) {
    return Status{StatusCode::kInvalidArgument, "min_payload > max_payload"};
  }
  if (pattern == Pattern::kBurst && messages_per_sec <= 0.0) {
    return Status{StatusCode::kInvalidArgument,
                  "burst requires messages_per_sec > 0"};
  }
  if (messages_per_sec < 0.0) {
    return Status{StatusCode::kInvalidArgument, "negative messages_per_sec"};
  }
  if (op_timeout <= common::Duration::zero()) {
    return Status{StatusCode::kInvalidArgument, "op_timeout must be positive"};
  }
  if (batch == 0) {
    return Status{StatusCode::kInvalidArgument, "batch must be >= 1"};
  }
  return Status::ok();
}

}  // namespace cs::loadgen
