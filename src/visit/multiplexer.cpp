#include "visit/multiplexer.hpp"

#include <vector>

#include "common/log.hpp"
#include "visit/server.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
// Pump threads poll with a short deadline so stop() is honored promptly.
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
}  // namespace

Result<std::unique_ptr<Multiplexer>> Multiplexer::start(
    net::Network& net, const Options& options) {
  auto sim_listener = net.listen(options.sim_address);
  if (!sim_listener.is_ok()) return sim_listener.status();
  auto viewer_listener = net.listen(options.viewer_address);
  if (!viewer_listener.is_ok()) return viewer_listener.status();

  std::unique_ptr<Multiplexer> mux{new Multiplexer};
  mux->options_ = options;
  mux->sim_listener_ = std::move(sim_listener).value();
  mux->viewer_listener_ = std::move(viewer_listener).value();
  Multiplexer* self = mux.get();
  mux->sim_accept_thread_ =
      std::jthread([self](std::stop_token st) { self->sim_accept_loop(st); });
  mux->viewer_accept_thread_ = std::jthread(
      [self](std::stop_token st) { self->viewer_accept_loop(st); });
  return mux;
}

Multiplexer::~Multiplexer() { stop(); }

void Multiplexer::stop() {
  if (stopped_.exchange(true)) return;
  sim_accept_thread_.request_stop();
  viewer_accept_thread_.request_stop();
  if (sim_listener_) sim_listener_->close();
  if (viewer_listener_) viewer_listener_->close();
  // Join the accept loops first so no new sim pump can be spawned, then
  // take down the current pump under its handoff lock.
  if (sim_accept_thread_.joinable()) sim_accept_thread_.join();
  if (viewer_accept_thread_.joinable()) viewer_accept_thread_.join();
  {
    std::scoped_lock lock(sim_pump_mutex_);
    if (sim_pump_thread_.joinable()) {
      sim_pump_thread_.request_stop();
      sim_pump_thread_.join();
    }
  }
  std::vector<Viewer> doomed;
  std::vector<std::jthread> graves;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [id, viewer] : viewers_) {
      viewer.conn->close();
      doomed.push_back(std::move(viewer));
    }
    viewers_.clear();
    master_id_ = 0;
    graves = std::move(graveyard_);
    graveyard_.clear();
  }
  for (auto& viewer : doomed) {
    if (viewer.pump.joinable()) {
      viewer.pump.request_stop();
      viewer.pump.join();
    }
  }
  for (auto& t : graves) {
    if (t.joinable()) {
      t.request_stop();
      t.join();
    }
  }
}

std::size_t Multiplexer::viewer_count() const {
  std::scoped_lock lock(mutex_);
  return viewers_.size();
}

std::uint64_t Multiplexer::master_id() const {
  std::scoped_lock lock(mutex_);
  return master_id_;
}

Multiplexer::Stats Multiplexer::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

void Multiplexer::sim_accept_loop(const std::stop_token& st) {
  while (!st.stop_requested()) {
    auto conn = sim_listener_->accept(Deadline::after(kPumpSlice));
    if (!conn.is_ok()) {
      if (conn.status().code() == StatusCode::kClosed) return;
      continue;
    }
    if (!handshake_accept(*conn.value(), options_.password,
                          Deadline::after(std::chrono::seconds(2)))
             .is_ok()) {
      continue;
    }
    // One simulation at a time: a fresh pump replaces the previous one.
    std::scoped_lock lock(sim_pump_mutex_);
    if (st.stop_requested()) return;  // raced with stop(): don't respawn
    if (sim_pump_thread_.joinable()) {
      sim_pump_thread_.request_stop();
      sim_pump_thread_.join();
    }
    net::ConnectionPtr sim = std::move(conn).value();
    sim_pump_thread_ = std::jthread(
        [this, sim](std::stop_token pump_st) { sim_pump(pump_st, sim); });
  }
}

void Multiplexer::viewer_accept_loop(const std::stop_token& st) {
  while (!st.stop_requested()) {
    auto conn = viewer_listener_->accept(Deadline::after(kPumpSlice));
    if (!conn.is_ok()) {
      if (conn.status().code() == StatusCode::kClosed) return;
      continue;
    }
    if (!handshake_accept(*conn.value(), options_.password,
                          Deadline::after(std::chrono::seconds(2)), "pending")
             .is_ok()) {
      continue;
    }
    add_viewer(std::move(conn).value());
  }
}

void Multiplexer::add_viewer(net::ConnectionPtr conn) {
  std::uint64_t id = 0;
  const Deadline d = Deadline::after(options_.forward_timeout);
  {
    std::scoped_lock lock(mutex_);
    id = next_viewer_id_++;
    // Late joiners get the schema announcements and the last sample of each
    // tag so that "everyone has the same view of the data". The caches hold
    // pre-encoded frames, so replay costs no serialization.
    for (const auto& [tag, frame] : schema_cache_) {
      (void)conn->send(frame, d);
    }
    for (const auto& [tag, frame] : last_sample_) {
      (void)conn->send(frame, d);
    }
    Viewer viewer;
    viewer.conn = conn;
    viewers_.emplace(id, std::move(viewer));
    auto& slot = viewers_[id];
    slot.pump = std::jthread(
        [this, id](std::stop_token st) { viewer_pump(st, id); });
  }
  // First viewer in becomes master.
  bool needs_master = false;
  {
    std::scoped_lock lock(mutex_);
    needs_master = (master_id_ == 0);
  }
  if (needs_master) {
    promote(id);
  } else {
    (void)conn->send(wire::make_control_message(kTagRole, "viewer").encode(),
                     d);
  }
}

void Multiplexer::remove_viewer(std::uint64_t id) {
  bool was_master = false;
  std::uint64_t successor = 0;
  {
    std::scoped_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    it->second.conn->close();
    it->second.pump.request_stop();
    // This may run on the viewer's own pump thread, so the jthread cannot
    // be joined here; it is parked and joined at stop() time.
    graveyard_.push_back(std::move(it->second.pump));
    viewers_.erase(it);
    was_master = (master_id_ == id);
    if (was_master) {
      master_id_ = 0;
      if (!viewers_.empty()) successor = viewers_.begin()->first;
    }
  }
  if (was_master && successor != 0) promote(successor);
}

void Multiplexer::promote(std::uint64_t id) {
  net::ConnectionPtr old_master, new_master;
  {
    std::scoped_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    if (master_id_ != 0) {
      auto old_it = viewers_.find(master_id_);
      if (old_it != viewers_.end()) old_master = old_it->second.conn;
    }
    master_id_ = id;
    new_master = it->second.conn;
  }
  const Deadline d = Deadline::after(options_.forward_timeout);
  if (old_master) {
    (void)old_master->send(
        wire::make_control_message(kTagRole, "viewer").encode(), d);
  }
  if (new_master) {
    (void)new_master->send(
        wire::make_control_message(kTagRole, "master").encode(), d);
  }
}

void Multiplexer::sim_pump(const std::stop_token& st, net::ConnectionPtr conn) {
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) return;
      continue;  // timeout slice
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) {
      CS_LOG_WARN("visit.mux") << "bad frame from sim: "
                               << m.status().to_string();
      conn->close();
      return;
    }
    handle_sim_message(std::move(m).value(), *conn);
  }
}

void Multiplexer::handle_sim_message(wire::Message m,
                                     net::Connection& sim_conn) {
  switch (m.header.kind) {
    case wire::MessageKind::kData: {
      // One encode per broadcast: the same frame feeds the fan-out and the
      // late-joiner replay cache.
      common::Bytes frame = m.encode();
      {
        std::scoped_lock lock(mutex_);
        ++stats_.samples_in;
        last_sample_.insert_or_assign(m.header.tag, frame);
      }
      broadcast(frame);
      return;
    }
    case wire::MessageKind::kControl: {
      common::Bytes frame = m.encode();
      if (m.header.tag == kTagSchema) {
        std::scoped_lock lock(mutex_);
        // Schema cache keyed by the data tag named in the body.
        auto body = wire::extract_string(m);
        if (body.is_ok()) {
          const auto tag = static_cast<std::uint32_t>(
              std::strtoul(body.value().c_str(), nullptr, 10));
          schema_cache_.insert_or_assign(tag, frame);
        }
      }
      broadcast(frame);
      return;
    }
    case wire::MessageKind::kRequest: {
      // Answer immediately from the master's parameter table.
      wire::Message reply;
      {
        std::scoped_lock lock(mutex_);
        auto it = parameters_.find(m.header.tag);
        reply = (it != parameters_.end())
                    ? it->second
                    : wire::make_data_message<std::uint8_t>(m.header.tag,
                                                            nullptr, 0);
        ++stats_.requests_served;
      }
      (void)sim_conn.send(reply.encode(),
                          Deadline::after(options_.forward_timeout));
      return;
    }
  }
}

void Multiplexer::broadcast(const common::Bytes& frame) {
  std::vector<std::pair<std::uint64_t, net::ConnectionPtr>> targets;
  {
    std::scoped_lock lock(mutex_);
    targets.reserve(viewers_.size());
    for (const auto& [id, viewer] : viewers_) {
      targets.emplace_back(id, viewer.conn);
    }
  }
  std::vector<std::uint64_t> dead;
  for (auto& [id, conn] : targets) {
    const Status s =
        conn->send(frame, Deadline::after(options_.forward_timeout));
    std::scoped_lock lock(mutex_);
    if (s.is_ok()) {
      ++stats_.samples_out;
    } else if (s.code() == StatusCode::kClosed) {
      dead.push_back(id);
    } else {
      ++stats_.samples_missed;  // slow viewer: skipped, not fatal
    }
  }
  for (auto id : dead) remove_viewer(id);
}

void Multiplexer::viewer_pump(const std::stop_token& st, std::uint64_t id) {
  net::ConnectionPtr conn;
  {
    std::scoped_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    conn = it->second.conn;
  }
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) {
        remove_viewer(id);
        return;
      }
      continue;
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) {
      remove_viewer(id);
      return;
    }
    handle_viewer_message(id, std::move(m).value());
  }
}

void Multiplexer::handle_viewer_message(std::uint64_t id, wire::Message m) {
  if (m.header.kind == wire::MessageKind::kControl) {
    if (m.header.tag == kTagTakeMaster) {
      // Cooperative policy: any authenticated participant may take the
      // master role; the previous master is demoted and notified.
      promote(id);
      return;
    }
    if (m.header.tag == kTagBye) {
      remove_viewer(id);
      return;
    }
    return;
  }
  if (m.header.kind == wire::MessageKind::kData) {
    std::scoped_lock lock(mutex_);
    if (id == master_id_) {
      parameters_.insert_or_assign(m.header.tag, std::move(m));
      ++stats_.steers_accepted;
    } else {
      ++stats_.steers_rejected;  // only the master steers
    }
  }
}

}  // namespace cs::visit
